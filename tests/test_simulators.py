"""Structural tests for the six application simulators.

These assert the byte-level quirks the paper documents, *directly on the
synthesized traffic* (no DPI in the loop), so emulator regressions are
caught independently of the analysis pipeline.
"""

import pytest

from repro.apps import (
    APP_NAMES,
    CallConfig,
    NetworkCondition,
    TransmissionMode,
    get_simulator,
)
from repro.apps.facetime import CELLULAR_BEACON_PREFIX
from repro.apps.zoom import INBOUND_SSRCS, OUTBOUND_SSRCS
from repro.packets.packet import Direction, TrafficCategory
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.message import StunMessage


def rtc_udp(trace):
    return [r for r in trace.records
            if r.transport == "UDP" and r.truth is not None and r.truth.is_rtc]


class TestCommon:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_deterministic(self, app):
        config = CallConfig(network=NetworkCondition.WIFI_P2P, seed=9,
                            call_duration=6.0, media_scale=0.2)
        a = get_simulator(app).simulate(config)
        b = get_simulator(app).simulate(config)
        assert len(a.records) == len(b.records)
        assert all(
            (x.timestamp, x.payload) == (y.timestamp, y.payload)
            for x, y in zip(a.records, b.records)
        )

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_seeds_differ(self, app):
        base = dict(network=NetworkCondition.WIFI_P2P, call_duration=6.0,
                    media_scale=0.2)
        a = get_simulator(app).simulate(CallConfig(seed=1, **base))
        b = get_simulator(app).simulate(CallConfig(seed=2, **base))
        assert [r.payload for r in a.records] != [r.payload for r in b.records]

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_records_sorted_and_in_capture_window(self, app, trace_cache):
        trace = trace_cache(app, NetworkCondition.WIFI_RELAY)
        timestamps = [r.timestamp for r in trace.records]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] >= trace.window.capture_start
        assert timestamps[-1] <= trace.window.capture_end + 1.0

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_media_confined_to_call_window(self, app, trace_cache):
        trace = trace_cache(app, NetworkCondition.WIFI_RELAY)
        for record in trace.records:
            if record.truth and record.truth.category is TrafficCategory.RTC_MEDIA:
                assert trace.window.call_start <= record.timestamp <= trace.window.call_end

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_background_present(self, app, trace_cache):
        trace = trace_cache(app, NetworkCondition.WIFI_RELAY)
        assert any(
            r.truth and r.truth.category is TrafficCategory.BACKGROUND
            for r in trace.records
        )

    def test_background_can_be_disabled(self):
        trace = get_simulator("discord").simulate(
            CallConfig(network=NetworkCondition.WIFI_P2P, seed=1,
                       call_duration=5.0, media_scale=0.2,
                       include_background=False)
        )
        assert not any(
            r.truth and r.truth.category is TrafficCategory.BACKGROUND
            for r in trace.records
        )

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            get_simulator("skype")


class TestZoom:
    def test_every_media_datagram_has_proprietary_header(self, trace_cache):
        trace = trace_cache("zoom", NetworkCondition.WIFI_RELAY)
        for record in rtc_udp(trace):
            detail = record.truth.detail
            if detail.startswith("rtp") or detail == "rtcp":
                # Proprietary header: direction byte then 0x64 marker.
                assert record.payload[0] in (0x00, 0x01, 0x04, 0x05)
                assert record.payload[1] == 0x64

    def test_fixed_ssrcs_per_network(self, trace_cache):
        for network in NetworkCondition:
            trace = trace_cache("zoom", network)
            expected = set(OUTBOUND_SSRCS[network]) | set(INBOUND_SSRCS)
            seen = set()
            for record in rtc_udp(trace):
                if record.truth.detail.startswith("rtp"):
                    # RTP starts right after the 24-byte header (unwrapped).
                    if record.payload[16] in (15, 16):
                        seen.add(int.from_bytes(record.payload[24 + 8:24 + 12], "big"))
            assert seen <= expected
            assert len(seen) >= 2

    def test_filler_datagrams_1000_identical_bytes(self, trace_cache):
        trace = trace_cache("zoom", NetworkCondition.WIFI_RELAY)
        fillers = [r for r in trace.records
                   if r.truth and r.truth.detail == "filler"]
        assert fillers
        for record in fillers:
            assert len(record.payload) == 1000
            assert len(set(record.payload)) == 1

    def test_launch_stun_is_precall(self, trace_cache):
        trace = trace_cache("zoom", NetworkCondition.CELLULAR)
        launch = [r for r in trace.records
                  if r.truth and r.truth.detail == "stun-launch"]
        assert launch
        assert all(r.timestamp < trace.window.call_start for r in launch)
        message = StunMessage.parse(launch[0].payload)
        assert message.classic  # RFC 3489 framing, no magic cookie
        assert message.attribute(0x0101).value == b"12345678901234567890"

    def test_midcall_stun_only_in_wifi_p2p(self, trace_cache):
        for network in NetworkCondition:
            trace = trace_cache("zoom", network)
            midcall = [r for r in trace.records
                       if r.truth and r.truth.detail == "stun-midcall"]
            if network is NetworkCondition.WIFI_P2P:
                assert midcall
            else:
                assert not midcall

    def test_mode_by_network(self, trace_cache):
        assert trace_cache("zoom", NetworkCondition.CELLULAR).mode_timeline[0][1] \
            is TransmissionMode.RELAY
        assert trace_cache("zoom", NetworkCondition.WIFI_P2P).mode_timeline[0][1] \
            is TransmissionMode.P2P


class TestFaceTime:
    def test_every_rtp_has_undefined_extension(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.WIFI_P2P)
        rtp_records = [r for r in rtc_udp(trace) if r.truth.detail.startswith("rtp")]
        assert rtp_records
        for record in rtp_records[:100]:
            packet = RtpPacket.parse(record.payload, strict=False)
            assert packet.extension is not None
            assert packet.extension.profile in (0x8001, 0x8500, 0x8D00)

    def test_relay_mode_prepends_0x6000(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.WIFI_RELAY)
        rtp_records = [r for r in rtc_udp(trace) if r.truth.detail.startswith("rtp")]
        headered = [r for r in rtp_records if r.payload[:2] == b"\x60\x00"]
        assert len(headered) / len(rtp_records) > 0.8

    def test_p2p_mode_has_under_50_headers(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.WIFI_P2P)
        rtp_records = [r for r in rtc_udp(trace) if r.truth.detail.startswith("rtp")]
        headered = [r for r in rtp_records if r.payload[:2] == b"\x60\x00"]
        assert len(headered) < 50

    def test_cellular_beacons(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.CELLULAR)
        beacons = [r for r in trace.records
                   if r.payload.startswith(CELLULAR_BEACON_PREFIX)]
        assert beacons
        assert all(len(r.payload) == 36 for r in beacons)
        # Exactly 20 packets/second per direction.
        outbound = sorted(r.timestamp for r in beacons
                          if r.direction is Direction.OUTBOUND)
        intervals = [b - a for a, b in zip(outbound, outbound[1:])]
        assert all(abs(i - 0.05) < 1e-6 for i in intervals)

    def test_no_beacons_on_wifi(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.WIFI_P2P)
        assert not any(r.payload.startswith(CELLULAR_BEACON_PREFIX)
                       for r in trace.records)

    def test_repeated_binding_requests_same_txid(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.WIFI_P2P)
        txids = []
        for record in trace.records:
            if record.truth and record.truth.detail == "stun" and \
                    record.direction is Direction.OUTBOUND:
                try:
                    message = StunMessage.parse(record.payload)
                except Exception:
                    continue
                if message.msg_type == 0x0001:
                    txids.append(message.transaction_id)
        assert len(txids) >= 5
        assert len(set(txids)) == 1  # unchanged transaction ID

    def test_facetime_always_p2p_on_cellular(self, trace_cache):
        trace = trace_cache("facetime", NetworkCondition.CELLULAR)
        assert trace.mode_timeline[0][1] is TransmissionMode.P2P


class TestMetaApps:
    @pytest.mark.parametrize("app,end_count", [("whatsapp", 4), ("messenger", 6)])
    def test_call_end_0800_messages(self, app, end_count, trace_cache):
        trace = trace_cache(app, NetworkCondition.WIFI_RELAY)
        found = []
        for record in trace.records:
            try:
                message = StunMessage.parse(record.payload)
            except Exception:
                continue
            if message.msg_type == 0x0800:
                found.append(record)
        assert len(found) == end_count
        assert all(
            trace.window.call_end - 2.0 <= r.timestamp <= trace.window.call_end
            for r in found
        )

    @pytest.mark.parametrize("app", ["whatsapp", "messenger"])
    def test_burst_0801_0802(self, app, trace_cache):
        trace = trace_cache(app, NetworkCondition.WIFI_RELAY)
        requests = {}
        responses = {}
        for record in trace.records:
            try:
                message = StunMessage.parse(record.payload)
            except Exception:
                continue
            if message.msg_type == 0x0801:
                requests[message.transaction_id] = record
            elif message.msg_type == 0x0802:
                responses[message.transaction_id] = record
        assert len(requests) == 16
        assert set(requests) == set(responses)  # shared transaction IDs
        assert all(len(r.payload) == 500 for r in requests.values())
        assert all(len(r.payload) == 40 for r in responses.values())
        times = sorted(r.timestamp for r in requests.values())
        assert times[-1] - times[0] < 0.005  # ~2.2 ms burst

    @pytest.mark.parametrize("app", ["whatsapp", "messenger"])
    def test_cellular_relay_then_p2p(self, app, trace_cache):
        trace = trace_cache(app, NetworkCondition.CELLULAR)
        modes = [mode for _t, mode in trace.mode_timeline]
        assert modes == [TransmissionMode.RELAY, TransmissionMode.P2P]

    def test_whatsapp_0803_0805_probes(self, trace_cache):
        trace = trace_cache("whatsapp", NetworkCondition.WIFI_RELAY)
        types = set()
        for record in trace.records:
            try:
                message = StunMessage.parse(record.payload)
            except Exception:
                continue
            types.add(message.msg_type)
        assert {0x0803, 0x0804, 0x0805} <= types

    def test_messenger_turn_control_plane(self, trace_cache):
        trace = trace_cache("messenger", NetworkCondition.WIFI_RELAY)
        types = set()
        for record in trace.records:
            try:
                message = StunMessage.parse(record.payload)
            except Exception:
                continue
            types.add(message.msg_type)
        # Allocate/401/Refresh/CreatePermission(+403)/ChannelBind/indications.
        assert {0x0003, 0x0113, 0x0103, 0x0004, 0x0104, 0x0008, 0x0118,
                0x0108, 0x0009, 0x0109, 0x0016, 0x0017} <= types


class TestDiscord:
    def test_always_relay(self, trace_cache):
        for network in NetworkCondition:
            trace = trace_cache("discord", network)
            assert trace.mode_timeline[0][1] is TransmissionMode.RELAY

    def test_no_stun_at_all(self, trace_cache):
        from repro.protocols.stun.constants import MAGIC_COOKIE
        trace = trace_cache("discord", NetworkCondition.WIFI_RELAY)
        cookie = MAGIC_COOKIE.to_bytes(4, "big")
        for record in rtc_udp(trace):
            assert record.payload[4:8] != cookie

    def test_rtcp_trailer_direction_byte(self, trace_cache):
        trace = trace_cache("discord", NetworkCondition.CELLULAR)
        rtcp = [r for r in trace.records if r.truth and r.truth.detail == "rtcp"]
        assert rtcp
        for record in rtcp:
            last = record.payload[-1]
            if record.direction is Direction.OUTBOUND:
                assert last == 0x80
            else:
                assert last == 0x00

    def test_rtcp_trailer_counter_monotonic(self, trace_cache):
        trace = trace_cache("discord", NetworkCondition.CELLULAR)
        counters = [
            int.from_bytes(r.payload[-3:-1], "big")
            for r in trace.records
            if r.truth and r.truth.detail == "rtcp"
            and r.direction is Direction.OUTBOUND
        ]
        assert counters == sorted(counters)

    def test_ssrc_zero_only_in_205(self, trace_cache):
        from repro.protocols.rtcp.packets import RtcpHeader
        trace = trace_cache("discord", NetworkCondition.WIFI_RELAY)
        zero_types = set()
        for record in trace.records:
            if not (record.truth and record.truth.detail == "rtcp"):
                continue
            header = RtcpHeader.parse(record.payload)
            ssrc = int.from_bytes(record.payload[4:8], "big")
            if ssrc == 0:
                zero_types.add(header.packet_type)
        assert zero_types <= {205}
        assert 205 in zero_types


class TestGoogleMeet:
    def test_goog_ping_pairs(self, trace_cache):
        trace = trace_cache("meet", NetworkCondition.WIFI_P2P)
        pings = pongs = 0
        for record in trace.records:
            try:
                message = StunMessage.parse(record.payload)
            except Exception:
                continue
            if message.msg_type == 0x0200:
                pings += 1
            elif message.msg_type == 0x0300:
                pongs += 1
        assert pings > 0 and pongs > 0

    def test_srtcp_tagless_only_relay_wifi(self, trace_cache):
        from repro.protocols.rtcp.packets import RtcpHeader

        def tagless_share(network):
            trace = trace_cache("meet", network)
            tagless = total = 0
            for record in trace.records:
                if not (record.truth and record.truth.detail == "srtcp"):
                    continue
                header = RtcpHeader.parse(record.payload)
                leftover = len(record.payload) - header.wire_length
                total += 1
                if leftover == 4:
                    tagless += 1
                else:
                    assert leftover == 14
            return tagless / total if total else 0.0

        assert tagless_share(NetworkCondition.WIFI_RELAY) > 0.7
        assert tagless_share(NetworkCondition.WIFI_P2P) == 0.0
        assert tagless_share(NetworkCondition.CELLULAR) == 0.0

    def test_relay_audio_rides_channeldata(self, trace_cache):
        trace = trace_cache("meet", NetworkCondition.WIFI_RELAY)
        audio = [r for r in trace.records
                 if r.truth and r.truth.detail == "rtp-audio"]
        assert audio
        assert all(r.payload[0] == 0x40 for r in audio)  # channel 0x4000

    def test_allocate_pingpong_present(self, trace_cache):
        trace = trace_cache("meet", NetworkCondition.WIFI_RELAY)
        allocate_times = []
        for record in trace.records:
            try:
                message = StunMessage.parse(record.payload)
            except Exception:
                continue
            if message.msg_type == 0x0003:
                allocate_times.append(record.timestamp)
        assert len(allocate_times) >= 10
