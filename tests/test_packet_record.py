"""Tests for the PacketRecord analysis model."""

import pytest

from repro.packets.packet import (
    Direction,
    PacketRecord,
    TrafficCategory,
    Truth,
)


def make_record(**overrides):
    defaults = dict(
        timestamp=1.0,
        src_ip="10.0.0.1",
        src_port=5000,
        dst_ip="8.8.8.8",
        dst_port=443,
        transport="UDP",
        payload=b"x",
    )
    defaults.update(overrides)
    return PacketRecord(**defaults)


class TestPacketRecord:
    def test_five_tuple(self):
        record = make_record()
        assert record.five_tuple == ("10.0.0.1", 5000, "8.8.8.8", 443, "UDP")

    def test_flow_key_symmetric(self):
        forward = make_record()
        backward = make_record(
            src_ip="8.8.8.8", src_port=443, dst_ip="10.0.0.1", dst_port=5000
        )
        assert forward.flow_key == backward.flow_key

    def test_flow_key_distinguishes_transport(self):
        assert make_record().flow_key != make_record(transport="TCP").flow_key

    def test_dst_three_tuple(self):
        assert make_record().dst_three_tuple == ("8.8.8.8", 443, "UDP")

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            make_record(transport="SCTP")

    def test_reply_swaps_endpoints(self):
        record = make_record(direction=Direction.OUTBOUND)
        reply = record.reply(2.0, b"resp")
        assert reply.src_ip == record.dst_ip
        assert reply.dst_port == record.src_port
        assert reply.direction is Direction.INBOUND
        assert reply.flow_key == record.flow_key

    def test_direction_flip(self):
        assert Direction.OUTBOUND.flipped() is Direction.INBOUND
        assert Direction.INBOUND.flipped() is Direction.OUTBOUND


class TestTruth:
    def test_rtc_categories(self):
        assert Truth(TrafficCategory.RTC_MEDIA).is_rtc
        assert Truth(TrafficCategory.RTC_CONTROL).is_rtc
        assert not Truth(TrafficCategory.BACKGROUND).is_rtc
        assert not Truth(TrafficCategory.SIGNALING).is_rtc
