"""Tests for the two-stage unrelated-traffic filter."""

import pytest

from repro.filtering import (
    DEFAULT_EXCLUDED_PORTS,
    LocalIpFilter,
    PortFilter,
    SniFilter,
    ThreeTupleFilter,
    TimespanFilter,
    TwoStageFilter,
)
from repro.packets.packet import PacketRecord
from repro.protocols.tls.client_hello import build_client_hello
from repro.streams.flow import group_streams
from repro.streams.timeline import CallWindow

WINDOW = CallWindow(capture_start=0, call_start=60, call_end=360, capture_end=420)


def record(t, src=("10.0.0.9", 40000), dst=("93.184.216.34", 443),
           transport="UDP", payload=b"x"):
    return PacketRecord(
        timestamp=t, src_ip=src[0], src_port=src[1],
        dst_ip=dst[0], dst_port=dst[1], transport=transport, payload=payload,
    )


def one_stream(records):
    streams = group_streams(records)
    assert len(streams) == 1
    return next(iter(streams.values()))


class TestTimespanFilter:
    def test_keeps_enclosed(self):
        stream = one_stream([record(61.0), record(359.0)])
        assert TimespanFilter(WINDOW).keeps(stream)

    def test_removes_pre_call_start(self):
        stream = one_stream([record(10.0), record(100.0)])
        assert not TimespanFilter(WINDOW).keeps(stream)

    def test_removes_post_call_end(self):
        stream = one_stream([record(100.0), record(400.0)])
        assert not TimespanFilter(WINDOW).keeps(stream)

    def test_removes_spanning(self):
        stream = one_stream([record(10.0), record(400.0)])
        assert not TimespanFilter(WINDOW).keeps(stream)

    def test_margin_tolerance(self):
        stream = one_stream([record(58.5), record(361.5)])
        assert TimespanFilter(WINDOW).keeps(stream)

    def test_split(self):
        good = [record(100.0)]
        bad = [record(10.0, dst=("1.1.1.1", 53))]
        kept, removed = TimespanFilter(WINDOW).split(group_streams(good + bad).values())
        assert len(kept) == 1 and len(removed) == 1


class TestThreeTupleFilter:
    def test_rebinding_detected(self):
        # Same destination 3-tuple outside and inside the window with
        # different source ports: the in-window stream must be removed.
        outside = record(10.0, src=("10.0.0.9", 40001), dst=("17.5.7.9", 5223),
                         transport="TCP")
        inside = record(100.0, src=("10.0.0.9", 40002), dst=("17.5.7.9", 5223),
                        transport="TCP")
        filt = ThreeTupleFilter([outside, inside], WINDOW)
        assert not filt.keeps(one_stream([inside]))

    def test_unrelated_stream_kept(self):
        outside = record(10.0, dst=("17.5.7.9", 5223), transport="TCP")
        inside = record(100.0, dst=("99.99.99.99", 3478))
        filt = ThreeTupleFilter([outside, inside], WINDOW)
        assert filt.keeps(one_stream([inside]))

    def test_transport_distinguishes(self):
        outside = record(10.0, dst=("17.5.7.9", 443), transport="TCP")
        inside = record(100.0, dst=("17.5.7.9", 443), transport="UDP")
        filt = ThreeTupleFilter([outside, inside], WINDOW)
        assert filt.keeps(one_stream([inside]))


class TestSniFilter:
    def _tls_stream(self, domain):
        hello = build_client_hello(domain)
        return one_stream([record(100.0, transport="TCP", payload=hello)])

    def test_blocklisted_removed(self):
        filt = SniFilter({"oauth2.googleapis.com"})
        assert not filt.keeps(self._tls_stream("oauth2.googleapis.com"))

    def test_other_domain_kept(self):
        filt = SniFilter({"oauth2.googleapis.com"})
        assert filt.keeps(self._tls_stream("turn.example.net"))

    def test_udp_ignored(self):
        filt = SniFilter({"oauth2.googleapis.com"})
        stream = one_stream([record(100.0)])
        assert filt.keeps(stream)

    def test_non_tls_tcp_kept(self):
        filt = SniFilter({"x.y"})
        stream = one_stream([record(100.0, transport="TCP", payload=b"GET /")])
        assert filt.keeps(stream)


class TestLocalIpFilter:
    def test_precall_local_pair_removed(self):
        precall = record(10.0, src=("192.168.1.5", 5353), dst=("224.0.0.251", 5353))
        incall = record(100.0, src=("192.168.1.5", 5353), dst=("224.0.0.251", 5353))
        filt = LocalIpFilter([precall, incall], WINDOW)
        assert not filt.keeps(one_stream([incall]))

    def test_p2p_media_preserved(self):
        # Two private endpoints whose pair never appears pre-call: legit P2P.
        media = record(100.0, src=("192.168.1.5", 50000), dst=("192.168.1.7", 50001))
        filt = LocalIpFilter([media], WINDOW)
        assert filt.keeps(one_stream([media]))

    def test_public_pair_ignored(self):
        # Note: documentation ranges (203.0.113.0/24 etc.) count as private
        # in modern Python, so use an unambiguous global address.
        precall = record(10.0, src=("52.10.20.30", 40000))
        incall = record(100.0, src=("52.10.20.30", 40000))
        filt = LocalIpFilter([precall, incall], WINDOW)
        assert filt.keeps(one_stream([incall]))


class TestPortFilter:
    @pytest.mark.parametrize("port", sorted(DEFAULT_EXCLUDED_PORTS))
    def test_excluded_ports_removed(self, port):
        stream = one_stream([record(100.0, dst=("1.2.3.4", port))])
        assert not PortFilter().keeps(stream)

    def test_media_port_kept(self):
        stream = one_stream([record(100.0, dst=("1.2.3.4", 3478))])
        assert PortFilter().keeps(stream)

    def test_custom_port_set(self):
        stream = one_stream([record(100.0, dst=("1.2.3.4", 9999))])
        assert not PortFilter({9999}).keeps(stream)


class TestTwoStageFilter:
    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            TwoStageFilter(WINDOW, enabled_heuristics=("bogus",))

    def test_accounting_consistent(self, trace_cache):
        from repro.apps import NetworkCondition

        trace = trace_cache("whatsapp", NetworkCondition.WIFI_RELAY)
        result = TwoStageFilter(trace.window).apply(trace.records)
        assert (
            result.raw.udp_packets
            == result.stage1_removed.udp_packets
            + result.stage2_removed.udp_packets
            + result.kept.udp_packets
        )
        assert (
            result.raw.tcp_packets
            == result.stage1_removed.tcp_packets
            + result.stage2_removed.tcp_packets
            + result.kept.tcp_packets
        )

    def test_full_pipeline_quality(self, pipeline_cache):
        from repro.apps import NetworkCondition

        _trace, result, _dpi, _verdicts = pipeline_cache(
            "whatsapp", NetworkCondition.WIFI_RELAY
        )
        assert result.evaluation.precision > 0.95
        assert result.evaluation.recall > 0.97

    def test_disabling_heuristics_leaks_background(self, trace_cache):
        from repro.apps import NetworkCondition

        trace = trace_cache("meet", NetworkCondition.WIFI_P2P)
        full = TwoStageFilter(trace.window).apply(trace.records)
        partial = TwoStageFilter(trace.window, enabled_heuristics=()).apply(trace.records)
        assert partial.evaluation.kept_non_rtc >= full.evaluation.kept_non_rtc
        assert partial.kept.udp_packets + partial.kept.tcp_packets >= (
            full.kept.udp_packets + full.kept.tcp_packets
        )

    def test_kept_records_sorted(self, pipeline_cache):
        from repro.apps import NetworkCondition

        _trace, result, _dpi, _verdicts = pipeline_cache(
            "whatsapp", NetworkCondition.WIFI_RELAY
        )
        kept = result.kept_records
        assert all(a.timestamp <= b.timestamp for a, b in zip(kept, kept[1:]))
