"""Tests for the case-study detectors (§5.2, §5.3)."""

import pytest

from repro.apps import NetworkCondition
from repro.experiments.case_studies import (
    detect_call_end_0800,
    detect_direction_byte,
    detect_dual_rtp,
    detect_extension_abuse,
    detect_facetime_beacons,
    detect_facetime_headers,
    detect_meta_burst,
    detect_srtcp_tags,
    detect_ssrc_zero,
    detect_zoom_filler,
    observed_rtp_ssrcs,
)


class TestZoomCaseStudies:
    def test_filler_detected(self, pipeline_cache):
        _trace, _f, dpi, _v = pipeline_cache("zoom", NetworkCondition.WIFI_RELAY)
        report = detect_zoom_filler(dpi.analyses)
        assert report.filler_count > 0
        assert 0.3 < report.filler_share <= 1.0
        assert report.shares_media_stream
        assert report.peak_rate_pps > 10

    def test_dual_rtp_detected(self, pipeline_cache):
        _trace, _f, dpi, _v = pipeline_cache("zoom", NetworkCondition.WIFI_RELAY)
        report = detect_dual_rtp(dpi.analyses)
        if report.dual_datagrams:  # probabilistic at small scale
            assert report.all_first_short
            assert report.all_same_ssrc_timestamp
            assert report.rate < 0.02

    def test_ssrcs_fixed_across_calls(self, pipeline_cache):
        _t, _f, dpi_a, _v = pipeline_cache("zoom", NetworkCondition.WIFI_RELAY, seed=1)
        ssrcs_a = observed_rtp_ssrcs(dpi_a.messages())
        from repro.apps.zoom import INBOUND_SSRCS, OUTBOUND_SSRCS
        expected = set(OUTBOUND_SSRCS[NetworkCondition.WIFI_RELAY]) | set(INBOUND_SSRCS)
        assert ssrcs_a <= expected


class TestDiscordCaseStudies:
    def test_ssrc_zero_rate(self, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache("discord", NetworkCondition.WIFI_RELAY)
        report = detect_ssrc_zero(dpi.messages())
        assert report.total_205 > 0
        assert 0.05 < report.rate < 0.6  # target ~25%

    def test_direction_byte(self, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache("discord", NetworkCondition.WIFI_RELAY)
        report = detect_direction_byte(dpi.messages())
        assert report.perfectly_correlated

    def test_extension_abuse(self, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache("discord", NetworkCondition.WIFI_RELAY)
        report = detect_extension_abuse(dpi.messages())
        assert 0.01 < report.id_zero_rate < 0.15          # target 4.91%
        assert 0.005 < report.undefined_profile_rate < 0.1  # target 2.58%
        assert report.undefined_profile_payload_types == {120}


class TestFaceTimeCaseStudies:
    def test_beacons_cellular_only(self, pipeline_cache):
        _t, _f, dpi_cell, _v = pipeline_cache("facetime", NetworkCondition.CELLULAR)
        cellular = detect_facetime_beacons(dpi_cell.analyses)
        assert cellular.beacon_count > 0
        assert cellular.all_36_bytes
        assert cellular.counters_monotonic
        assert abs(cellular.median_interval - 0.05) < 0.01

        _t, _f, dpi_wifi, _v = pipeline_cache("facetime", NetworkCondition.WIFI_P2P)
        wifi = detect_facetime_beacons(dpi_wifi.analyses)
        assert wifi.beacon_count == 0

    def test_relay_headers(self, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache("facetime", NetworkCondition.WIFI_RELAY)
        report = detect_facetime_headers(dpi.analyses)
        assert report.share > 0.7           # target 89.2%
        assert report.all_start_0x6000
        assert 8 <= report.length_range[0] and report.length_range[1] <= 19

    def test_p2p_headers_rare(self, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache("facetime", NetworkCondition.WIFI_P2P)
        report = detect_facetime_headers(dpi.analyses)
        assert report.headered < 50


class TestMetaCaseStudies:
    @pytest.mark.parametrize("app,count", [("whatsapp", 4), ("messenger", 6)])
    def test_call_end_0800(self, app, count, pipeline_cache):
        trace, _f, dpi, _v = pipeline_cache(app, NetworkCondition.WIFI_RELAY)
        report = detect_call_end_0800(dpi.messages(), trace.window.call_end)
        assert report.count == count
        assert report.near_call_end
        assert report.carry_relayed_address

    @pytest.mark.parametrize("app", ["whatsapp", "messenger"])
    def test_burst(self, app, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache(app, NetworkCondition.WIFI_RELAY)
        report = detect_meta_burst(dpi.messages())
        assert report.pairs == 16
        assert report.burst_span < 0.01
        assert report.request_sizes == frozenset({500})
        assert report.response_sizes == frozenset({40})
        assert report.txids_paired


class TestMeetCaseStudies:
    def test_srtcp_tags_by_network(self, pipeline_cache):
        _t, _f, dpi, _v = pipeline_cache("meet", NetworkCondition.WIFI_RELAY)
        relay = detect_srtcp_tags(dpi.messages())
        assert relay.tagless_share > 0.7

        _t, _f, dpi, _v = pipeline_cache("meet", NetworkCondition.CELLULAR)
        cellular = detect_srtcp_tags(dpi.messages())
        assert cellular.tagless_share == 0.0
        assert cellular.tagged > 0
