"""Batch capture ingest: mmap index parity, fast-path bit-identity, wiring.

The contract under test is absolute: for any pcap the mmap batch decoder
(:mod:`repro.packets.batch`) must produce exactly the record stream the
scalar :class:`~repro.packets.pcap.PcapReader` produces — same fields,
same payload bytes, same float timestamps, same skips, same exceptions —
in both the numpy-vectorized and pure-Python index modes.  Everything
else (streaming wrappers, the directory watcher, the planner's decode
rate) layers on that guarantee.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import NetworkCondition
from repro.conformance.golden import (
    IMPAIRED_CORPORA,
    CorpusConfig,
    cell_records,
    corpus_cells,
    load_manifest,
)
from repro.conformance import default_corpus_dir
from repro.packets import (
    BatchPcapReader,
    IngestStats,
    MappedCapture,
    PacketRecord,
    PcapReader,
    PcapWriter,
    iter_capture_chunks,
    iter_pcap,
    iter_pcap_chunks,
    iter_pcapng,
    iter_pcapng_chunks,
    read_pcap,
    read_pcapng,
    write_pcap,
    write_pcapng,
)
from repro.packets.batch import HAVE_NUMPY
from repro.packets.decode import (
    LINKTYPE_ETHERNET,
    LINKTYPE_NULL,
    LINKTYPE_RAW,
    encode_record,
)
from repro.packets.pcap import MAGIC_MICROS, PcapFormatError

#: Both index modes; the vector mode degrades to pure-Python when numpy
#: is absent, so the parametrization is safe on minimal installs.
MODES = [pytest.param(False, id="pure-python"),
         pytest.param(None, id="auto-vector")]


def scalar_records(path):
    with open(path, "rb") as fileobj:
        return list(PcapReader(fileobj).records())


def batch_records(path, use_numpy):
    stats = IngestStats()
    records = list(iter_pcap(path, use_numpy=use_numpy, stats=stats))
    return records, stats


def assert_bit_identical(scalar, batch):
    assert len(scalar) == len(batch)
    for left, right in zip(scalar, batch):
        assert left == right
        # Equality is not enough: the DPI columnar scanner requires real
        # bytes payloads, and timestamps must match to the bit.
        assert type(right.payload) is bytes
        assert struct.pack("d", left.timestamp) == struct.pack(
            "d", right.timestamp
        )


# --------------------------------------------------------------------------
# Index-scan format errors: same type for the same malformed input
# --------------------------------------------------------------------------


class TestIndexScanErrors:
    def _write(self, tmp_path, blob):
        path = tmp_path / "capture.pcap"
        path.write_bytes(blob)
        return path

    def _global_header(self, snaplen=262144, link_type=LINKTYPE_ETHERNET):
        return struct.pack(
            "<IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, snaplen, link_type
        )

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_truncated_global_header(self, tmp_path, use_numpy):
        path = self._write(tmp_path, b"\xd4\xc3\xb2\xa1\x02\x00")
        with pytest.raises(PcapFormatError, match="truncated pcap global"):
            BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_empty_file(self, tmp_path, use_numpy):
        path = self._write(tmp_path, b"")
        with pytest.raises(PcapFormatError, match="truncated pcap global"):
            BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_bad_magic(self, tmp_path, use_numpy):
        path = self._write(tmp_path, b"\x00" * 24)
        with pytest.raises(PcapFormatError, match="bad pcap magic"):
            BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_truncated_record_header(self, tmp_path, use_numpy):
        path = self._write(tmp_path, self._global_header() + b"\x01\x02\x03")
        with pytest.raises(PcapFormatError, match="truncated pcap record header"):
            BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_implausible_record_length(self, tmp_path, use_numpy):
        record = struct.pack("<IIII", 0, 0, 0xFFFFFFFF, 0xFFFFFFFF)
        path = self._write(tmp_path, self._global_header() + record)
        with pytest.raises(PcapFormatError, match="implausible record length"):
            BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_truncated_record_body(self, tmp_path, use_numpy):
        record = struct.pack("<IIII", 0, 0, 64, 64) + b"\x00" * 10
        path = self._write(tmp_path, self._global_header() + record)
        with pytest.raises(PcapFormatError, match="truncated pcap record body"):
            BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_scalar_reader_agrees_on_every_error(self, tmp_path, use_numpy):
        blobs = [
            b"",
            b"\xd4\xc3\xb2\xa1",
            b"\x00" * 24,
            self._global_header() + b"\x01",
            self._global_header() + struct.pack("<IIII", 0, 0, 1 << 30, 0),
            self._global_header() + struct.pack("<IIII", 0, 0, 40, 40),
        ]
        for blob in blobs:
            path = self._write(tmp_path, blob)
            with pytest.raises(PcapFormatError):
                scalar_records(path)
            with pytest.raises(PcapFormatError):
                BatchPcapReader(path, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_zero_record_file_decodes_empty(self, tmp_path, use_numpy):
        path = self._write(tmp_path, self._global_header())
        with BatchPcapReader(path, use_numpy=use_numpy) as reader:
            assert reader.frame_count == 0
            assert list(reader.records()) == []
        assert scalar_records(path) == []


# --------------------------------------------------------------------------
# Timestamp variants and exotic containers
# --------------------------------------------------------------------------


class TestTimestampAndContainerParity:
    def _sample_records(self):
        return [
            PacketRecord(
                timestamp=1.0 + i * 0.000001 + i * 1e-9,
                src_ip="10.0.0.1",
                src_port=5000 + i,
                dst_ip="10.0.0.2",
                dst_port=6000,
                transport="UDP",
                payload=bytes([i]) * (i + 1),
            )
            for i in range(32)
        ]

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_nanosecond_timestamps(self, tmp_path, use_numpy):
        path = tmp_path / "nanos.pcap"
        write_pcap(path, self._sample_records(), nanosecond=True)
        batch, stats = batch_records(path, use_numpy)
        assert_bit_identical(scalar_records(path), batch)
        assert stats.fallbacks == 0

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_big_endian_capture(self, tmp_path, use_numpy):
        payload = b"\x80\x60" + b"\x00" * 30
        ip = bytes([0x45, 0]) + struct.pack("!H", 20 + 8 + len(payload))
        ip += b"\x00" * 4 + bytes([64, 17]) + b"\x00\x00"
        ip += bytes([10, 0, 0, 1]) + bytes([10, 0, 0, 2])
        udp = struct.pack("!HHHH", 4000, 4001, 8 + len(payload), 0) + payload
        frame = ip + udp
        path = tmp_path / "be.pcap"
        blob = struct.pack(
            ">IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, 262144, LINKTYPE_RAW
        )
        blob += struct.pack(">IIII", 7, 250000, len(frame), len(frame)) + frame
        path.write_bytes(blob)
        batch, stats = batch_records(path, use_numpy)
        assert_bit_identical(scalar_records(path), batch)
        assert stats.fast_path == 1

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_raw_and_null_link_types(self, tmp_path, use_numpy):
        records = self._sample_records()
        for link_type in (LINKTYPE_RAW, LINKTYPE_NULL):
            path = tmp_path / f"lt{link_type}.pcap"
            write_pcap(path, records, link_type=link_type)
            batch, stats = batch_records(path, use_numpy)
            assert_bit_identical(scalar_records(path), batch)
            if link_type == LINKTYPE_NULL:
                # No fast path for the NULL family header: every frame
                # must round-trip through decode_frame instead.
                assert stats.fallbacks == stats.frames

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_undecodable_frames_skipped_identically(self, tmp_path, use_numpy):
        path = tmp_path / "mixed.pcap"
        with open(path, "wb") as fileobj:
            writer = PcapWriter(fileobj)
            writer.write_record(self._sample_records()[0])
            # An ARP ethertype: decode_frame raises DecodeError, which
            # records() skips — both readers must drop exactly this frame.
            writer.write_frame(2.0, b"\xff" * 12 + b"\x08\x06" + b"\x00" * 28)
            writer.write_record(self._sample_records()[1])
        batch, stats = batch_records(path, use_numpy)
        assert_bit_identical(scalar_records(path), batch)
        assert len(batch) == 2
        assert stats.frames == 3
        assert stats.skipped == 1

    @pytest.mark.parametrize("use_numpy", MODES)
    def test_vlan_and_options_fall_back_bit_identically(
        self, tmp_path, use_numpy
    ):
        base = encode_record(self._sample_records()[0], LINKTYPE_ETHERNET)
        # 802.1Q tag spliced after the MACs; the fast path only takes
        # untagged IPv4, so the batch reader must defer to decode_frame
        # (which does understand the tag) and emit an identical record.
        vlan = base[:12] + b"\x81\x00\x00\x2a" + base[12:]
        # IHL=6 (one option word): the fast path must refuse (first IP
        # byte is 0x46) and the scalar decode handles the options.
        ip_frame = bytearray(base)
        ip_frame[14] = 0x46
        ip_frame[14 + 20:14 + 20] = b"\x01\x01\x01\x00"
        total = struct.unpack_from("!H", ip_frame, 16)[0] + 4
        struct.pack_into("!H", ip_frame, 16, total)
        path = tmp_path / "exotic.pcap"
        with open(path, "wb") as fileobj:
            writer = PcapWriter(fileobj)
            writer.write_frame(1.0, vlan)
            writer.write_frame(2.0, bytes(ip_frame))
        batch, stats = batch_records(path, use_numpy)
        assert_bit_identical(scalar_records(path), batch)
        assert stats.fallbacks == 2
        assert stats.fast_path == 0
        assert len(batch) == 2  # both exotic frames decode via fallback

    def test_truncated_ip_payload_propagates_from_both(self, tmp_path):
        # total_length larger than the captured bytes: decode_frame
        # raises TruncatedError (a ValueError, not a DecodeError), which
        # records() must NOT swallow — in either reader.
        frame = bytearray(encode_record(self._sample_records()[0],
                                        LINKTYPE_ETHERNET))
        struct.pack_into("!H", frame, 16, len(frame) - 14 + 40)
        path = tmp_path / "trunc.pcap"
        with open(path, "wb") as fileobj:
            PcapWriter(fileobj).write_frame(1.0, bytes(frame))
        with pytest.raises(ValueError):
            scalar_records(path)
        for use_numpy in (False, None):
            with pytest.raises(ValueError):
                batch_records(path, use_numpy)


# --------------------------------------------------------------------------
# Hypothesis round-trip property
# --------------------------------------------------------------------------

_ips = st.tuples(
    st.integers(1, 254), st.integers(0, 255),
    st.integers(0, 255), st.integers(1, 254),
).map(lambda parts: "%d.%d.%d.%d" % parts)

_records = st.lists(
    st.builds(
        PacketRecord,
        timestamp=st.floats(0.0, 4e9, allow_nan=False, width=32),
        src_ip=_ips,
        src_port=st.integers(1, 65535),
        dst_ip=_ips,
        dst_port=st.integers(1, 65535),
        transport=st.sampled_from(["UDP", "TCP"]),
        payload=st.binary(min_size=0, max_size=64),
    ),
    min_size=1,
    max_size=24,
)


class TestRoundTripProperty:
    @settings(max_examples=40)
    @given(records=_records, link_type=st.sampled_from(
        [LINKTYPE_ETHERNET, LINKTYPE_RAW]
    ), nanosecond=st.booleans())
    def test_encode_decode_round_trip_bit_identical(
        self, tmp_path_factory, records, link_type, nanosecond
    ):
        path = tmp_path_factory.mktemp("rt") / "prop.pcap"
        write_pcap(path, records, link_type=link_type, nanosecond=nanosecond)
        scalar = scalar_records(path)
        for use_numpy in (False, None):
            batch, stats = batch_records(path, use_numpy)
            assert_bit_identical(scalar, batch)
            assert stats.frames == len(records)
            assert stats.records == len(scalar)
            # Every generated shape is UDP/TCP over plain IPv4: the fast
            # path must take all of them on these link types.
            assert stats.fallbacks == 0
            assert stats.fallback_rate == 0.0


# --------------------------------------------------------------------------
# Golden + impaired corpus parity (the acceptance criterion)
# --------------------------------------------------------------------------

_CORPUS = CorpusConfig()
_CLEAN_CELLS = corpus_cells(load_manifest(default_corpus_dir()))
_IMPAIRED_CELLS = [
    (app, IMPAIRED_CORPORA[profile], profile)
    for profile in sorted(IMPAIRED_CORPORA)
    for app in sorted({a for a, _n in _CLEAN_CELLS})
]


class TestCorpusParity:
    @pytest.mark.parametrize(
        "app,network",
        _CLEAN_CELLS,
        ids=[f"{a}-{n.value}" for a, n in _CLEAN_CELLS],
    )
    def test_clean_cells_round_trip(self, tmp_path, app, network):
        records = cell_records(app, network, _CORPUS)
        path = tmp_path / "cell.pcap"
        write_pcap(path, records)
        scalar = scalar_records(path)
        assert len(scalar) == len(records)
        for use_numpy in (False, None):
            batch, stats = batch_records(path, use_numpy)
            assert_bit_identical(scalar, batch)
            assert stats.skipped == 0

    @pytest.mark.parametrize(
        "app,network,profile",
        _IMPAIRED_CELLS,
        ids=[f"{a}-{p}" for a, _n, p in _IMPAIRED_CELLS],
    )
    def test_impaired_cells_round_trip(self, tmp_path, app, network, profile):
        config = CorpusConfig(impairment=profile)
        records = cell_records(app, network, config)
        path = tmp_path / "cell.pcap"
        write_pcap(path, records)
        scalar = scalar_records(path)
        assert len(scalar) == len(records)
        for use_numpy in (False, None):
            batch, stats = batch_records(path, use_numpy)
            assert_bit_identical(scalar, batch)
            assert stats.skipped == 0


# --------------------------------------------------------------------------
# Streaming wrappers, mmap pinning, watcher and replay wiring
# --------------------------------------------------------------------------


def _cell_pcap(tmp_path, name="cell.pcap"):
    """One golden cell serialized to *tmp_path*; returns (path, expected).

    ``expected`` is the scalar reader's decode of the file — the
    round-trip drops simulator-only ground-truth labels, so decoded
    streams must be compared against decoded expectations.
    """
    records = cell_records("meet", NetworkCondition.WIFI_RELAY, _CORPUS)
    path = tmp_path / name
    write_pcap(path, records)
    return path, scalar_records(path)


class TestStreamingWrappers:
    def test_read_pcap_matches_iterators(self, tmp_path):
        path, records = _cell_pcap(tmp_path)
        flat = list(iter_pcap(path))
        chunked = [r for batch in iter_pcap_chunks(path, 100) for r in batch]
        assert read_pcap(path) == flat == chunked == records

    def test_chunk_sizes_respected(self, tmp_path):
        path, records = _cell_pcap(tmp_path)
        batches = list(iter_pcap_chunks(path, 64))
        assert all(len(batch) <= 64 for batch in batches)
        assert all(batches)
        assert sum(len(batch) for batch in batches) == len(records)

    def test_invalid_chunk_size_rejected(self, tmp_path):
        path, _records = _cell_pcap(tmp_path)
        with pytest.raises(ValueError):
            list(iter_pcap_chunks(path, 0))
        with pytest.raises(ValueError):
            list(iter_pcapng_chunks(path, 0))

    def test_pcapng_iterators_match_list_reader(self, tmp_path):
        records = cell_records("meet", NetworkCondition.WIFI_RELAY, _CORPUS)
        path = tmp_path / "cell.pcapng"
        write_pcapng(path, records)
        flat = list(iter_pcapng(path))
        chunked = [r for b in iter_pcapng_chunks(path, 50) for r in b]
        assert read_pcapng(path) == flat == chunked

    def test_iter_capture_chunks_dispatches_on_suffix(self, tmp_path):
        records = cell_records("meet", NetworkCondition.WIFI_RELAY, _CORPUS)
        pcap = tmp_path / "c.pcap"
        pcapng = tmp_path / "c.pcapng"
        write_pcap(pcap, records)
        write_pcapng(pcapng, records)
        via_pcap = [r for b in iter_capture_chunks(pcap, 128) for r in b]
        via_pcapng = [r for b in iter_capture_chunks(pcapng, 128) for r in b]
        assert via_pcap == read_pcap(pcap)
        assert via_pcapng == read_pcapng(pcapng)


class TestMmapPinning:
    def test_mapped_capture_pins_length_at_open(self, tmp_path):
        path = tmp_path / "grow.bin"
        path.write_bytes(b"A" * 100)
        with MappedCapture(path) as capture:
            assert capture.size == 100
            with open(path, "ab") as fileobj:
                fileobj.write(b"B" * 100)
            assert capture.size == 100
            assert len(capture.buffer) == 100

    def test_reader_ignores_growth_after_open(self, tmp_path):
        path, records = _cell_pcap(tmp_path)
        extra = PacketRecord(
            timestamp=records[-1].timestamp + 1.0,
            src_ip="192.0.2.1", src_port=1234,
            dst_ip="192.0.2.2", dst_port=4321,
            transport="UDP", payload=b"late",
        )
        with BatchPcapReader(path) as reader:
            assert reader.frame_count == len(records)
            # A rotating writer reopens the file and appends mid-read:
            # the pinned mapping must keep yielding the open-time prefix.
            with open(path, "ab") as fileobj:
                frame = encode_record(extra, LINKTYPE_ETHERNET)
                fileobj.write(
                    struct.pack("<IIII", 99, 0, len(frame), len(frame))
                )
                fileobj.write(frame)
            decoded = list(reader.records())
        assert decoded == records
        # A fresh open sees the appended record too.
        assert len(read_pcap(path)) == len(records) + 1

    def test_empty_mapped_capture(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with MappedCapture(path) as capture:
            assert capture.size == 0
            assert capture.buffer == b""


class TestIngestWiring:
    def test_watcher_streams_batches_and_skips_bad_files(self, tmp_path):
        from repro.service.ingest import PcapDirectoryWatcher

        path, records = _cell_pcap(tmp_path, "aaa.pcap")
        (tmp_path / "bbb.pcap").write_bytes(b"\x00" * 48)  # bad magic
        watcher = PcapDirectoryWatcher(
            str(tmp_path), batch_size=100, poll_interval=0.01, drain_once=True
        )
        batches = list(watcher)
        assert all(len(batch) <= 100 for batch in batches)
        assert [r for batch in batches for r in batch] == records

    def test_replay_source_from_pcap_matches_list_replay(self, tmp_path):
        from repro.service.ingest import ReplaySource

        path, records = _cell_pcap(tmp_path)
        from_list = list(ReplaySource(records, batch_size=75))
        from_file = list(ReplaySource.from_pcap(str(path), batch_size=75))
        assert from_list == from_file

    def test_replay_source_from_pcap_paced(self, tmp_path):
        from repro.service.ingest import ReplaySource

        path, records = _cell_pcap(tmp_path)
        source = ReplaySource.from_pcap(
            str(path), batch_size=10_000, pace="clock", speed=1e6
        )
        assert [r for b in source for r in b] == records


# --------------------------------------------------------------------------
# Planner decode rate
# --------------------------------------------------------------------------


class TestPlannerDecodeRate:
    def test_decode_rate_key_exists(self):
        from repro.experiments import costmodel

        assert "decode" in costmodel.DEFAULT_RATES
        assert "decode" in costmodel.RATE_KEYS

    def test_rates_from_stage_stats_maps_decode(self):
        from repro.experiments.costmodel import rates_from_stage_stats
        from repro.pipeline.stage import StageStats

        stats = {
            "decode": StageStats(
                name="decode", records_in=10_000, records_out=9_990,
                wall_seconds=0.05,
            )
        }
        rates = rates_from_stage_stats(stats, "scalar")
        assert rates == {"decode": pytest.approx(200_000.0)}

    def test_calibration_learns_decode_rate(self):
        from repro.experiments.costmodel import Calibration

        calibration = Calibration()
        calibration.observe_rate("decode", 300_000.0)
        assert calibration.rate("decode") == pytest.approx(300_000.0)
        payload = calibration.as_dict()
        assert Calibration.from_dict(payload).rates["decode"] == pytest.approx(
            300_000.0
        )

    def test_plan_charges_decode_serially(self):
        from repro.experiments.costmodel import DEFAULT_RATES
        from repro.experiments.scheduler import PlanSignals, plan_execution

        base = dict(
            records=50_000, kept_records=40_000, flows=12,
            max_flow_records=8_000, cpu_count=4, rates=DEFAULT_RATES,
        )
        without = plan_execution(PlanSignals(**base))
        with_decode = plan_execution(
            PlanSignals(**base, decode_records=50_000)
        )
        costs_without = dict(without.costs)
        costs_with = dict(with_decode.costs)
        expected = 50_000 / DEFAULT_RATES["decode"]
        for option, seconds in costs_without.items():
            assert costs_with[option] == pytest.approx(seconds + expected)
        assert any("ingest:" in line for line in with_decode.rationale)
        assert not any("ingest:" in line for line in without.rationale)
        assert with_decode.signals.as_dict()["decode_records"] == 50_000

    def test_zero_decode_records_changes_nothing(self):
        from repro.experiments.costmodel import DEFAULT_RATES
        from repro.experiments.scheduler import PlanSignals, plan_execution

        base = dict(
            records=5_000, kept_records=4_000, flows=6,
            max_flow_records=900, cpu_count=2, rates=DEFAULT_RATES,
        )
        default = plan_execution(PlanSignals(**base))
        explicit = plan_execution(PlanSignals(**base, decode_records=0))
        assert default.costs == explicit.costs
        assert default.rationale == explicit.rationale


# --------------------------------------------------------------------------
# CLI: streaming pcap analysis with --plan auto
# --------------------------------------------------------------------------


class TestPcapCli:
    def test_pcap_plan_auto_streams_and_calibrates(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        from repro import cli
        from repro.experiments import costmodel

        monkeypatch.setattr(costmodel, "_stores", {})
        path, _records = _cell_pcap(tmp_path)
        calibration_file = tmp_path / "calibration.json"
        code = cli.main([
            "pcap", str(path), "--plan", "auto",
            "--calibration-file", str(calibration_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan: auto:" in out
        assert "Ingest:" in out
        assert "fallback rate" in out
        payload = json.loads(calibration_file.read_text())
        assert payload["rates"].get("decode", 0) > 0

    def test_pcap_fixed_mode_output_unchanged_shape(self, tmp_path, capsys):
        from repro import cli

        path, _records = _cell_pcap(tmp_path)
        code = cli.main(["pcap", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Datagram classes" in out
        assert "plan:" not in out
