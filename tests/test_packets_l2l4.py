"""Tests for the L2-L4 codecs: Ethernet, IPv4/IPv6, UDP/TCP, checksums."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets.checksum import internet_checksum, tcp_checksum, udp_checksum
from repro.packets.ethernet import EthernetFrame, EtherType, format_mac, parse_mac
from repro.packets.ip import IPv4Header, IPv6Header, is_link_local, is_private_address
from repro.packets.transport import TcpSegment, UdpDatagram
from repro.utils.bytesview import TruncatedError


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_udp_checksum_never_zero(self):
        raw = UdpDatagram(1, 2, b"x").build()
        assert udp_checksum("1.2.3.4", "5.6.7.8", raw) != 0

    def test_mixed_families_rejected(self):
        with pytest.raises(ValueError):
            udp_checksum("1.2.3.4", "fd00::1", b"\x00" * 8)

    def test_verification_round_trip(self):
        # A datagram built with a checksum verifies to zero when re-summed
        # including the checksum field over the pseudo-header.
        raw = UdpDatagram(5000, 53, b"query").build("10.0.0.1", "10.0.0.2")
        import ipaddress
        import struct
        pseudo = (
            ipaddress.ip_address("10.0.0.1").packed
            + ipaddress.ip_address("10.0.0.2").packed
            + struct.pack("!BBH", 0, 17, len(raw))
        )
        assert internet_checksum(pseudo + raw) == 0


class TestEthernet:
    def test_round_trip(self):
        frame = EthernetFrame("aa:bb:cc:dd:ee:ff", "11:22:33:44:55:66",
                              int(EtherType.IPV4), b"payload")
        parsed = EthernetFrame.parse(frame.build())
        assert parsed == frame

    def test_vlan_tags_skipped(self):
        inner = EthernetFrame("aa:bb:cc:dd:ee:ff", "11:22:33:44:55:66",
                              int(EtherType.IPV4), b"ip").build()
        # Splice a VLAN tag in: ethertype 0x8100, TCI 0x0064, then 0x0800.
        tagged = inner[:12] + b"\x81\x00\x00\x64" + inner[12:]
        parsed = EthernetFrame.parse(tagged)
        assert parsed.ethertype == EtherType.IPV4
        assert parsed.payload == b"ip"

    def test_truncated_raises(self):
        with pytest.raises(TruncatedError):
            EthernetFrame.parse(b"\x00" * 10)

    def test_mac_helpers(self):
        assert parse_mac("01:02:03:04:05:06") == bytes(range(1, 7))
        assert format_mac(bytes(range(1, 7))) == "01:02:03:04:05:06"

    def test_bad_mac_rejected(self):
        with pytest.raises(ValueError):
            parse_mac("01:02:03")
        with pytest.raises(ValueError):
            format_mac(b"\x00")


class TestIPv4:
    def test_round_trip(self):
        header = IPv4Header(src_ip="192.168.1.1", dst_ip="8.8.8.8",
                            proto=17, payload=b"data", ttl=55)
        parsed = IPv4Header.parse(header.build())
        assert parsed.src_ip == "192.168.1.1"
        assert parsed.dst_ip == "8.8.8.8"
        assert parsed.proto == 17
        assert parsed.payload == b"data"
        assert parsed.ttl == 55

    def test_checksum_valid(self):
        raw = IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2",
                         proto=6, payload=b"").build()
        assert internet_checksum(raw[:20]) == 0

    def test_wrong_version_rejected(self):
        raw = bytearray(IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2",
                                   proto=6, payload=b"").build())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            IPv4Header.parse(bytes(raw))

    def test_total_length_truncation_detected(self):
        raw = bytearray(IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2",
                                   proto=6, payload=b"abcd").build())
        raw[2:4] = (100).to_bytes(2, "big")
        with pytest.raises(TruncatedError):
            IPv4Header.parse(bytes(raw))

    def test_options_must_be_aligned(self):
        header = IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2",
                            proto=6, payload=b"", options=b"\x01")
        with pytest.raises(ValueError):
            header.build()

    def test_trailing_link_padding_ignored(self):
        raw = IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2",
                         proto=17, payload=b"xy").build() + b"\x00" * 6
        assert IPv4Header.parse(raw).payload == b"xy"


class TestIPv6:
    def test_round_trip(self):
        header = IPv6Header(src_ip="fd00::1", dst_ip="2001:db8::2",
                            proto=17, payload=b"six", hop_limit=12)
        parsed = IPv6Header.parse(header.build())
        assert parsed.src_ip == "fd00::1"
        assert parsed.dst_ip == "2001:db8::2"
        assert parsed.payload == b"six"
        assert parsed.hop_limit == 12

    def test_flow_label_preserved(self):
        header = IPv6Header(src_ip="::1", dst_ip="::2", proto=6,
                            payload=b"", flow_label=0xABCDE, traffic_class=7)
        parsed = IPv6Header.parse(header.build())
        assert parsed.flow_label == 0xABCDE
        assert parsed.traffic_class == 7

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            IPv6Header.parse(bytes(40))

    def test_payload_length_enforced(self):
        raw = bytearray(IPv6Header(src_ip="::1", dst_ip="::2",
                                   proto=17, payload=b"ab").build())
        raw[4:6] = (50).to_bytes(2, "big")
        with pytest.raises(TruncatedError):
            IPv6Header.parse(bytes(raw))

    def test_address_scope_helpers(self):
        assert is_private_address("192.168.0.1")
        assert is_private_address("10.1.2.3")
        assert is_private_address("fd00::5")
        assert is_link_local("fe80::1")
        assert not is_private_address("8.8.8.8")


class TestUdp:
    def test_round_trip(self):
        raw = UdpDatagram(5000, 443, b"hello").build()
        parsed = UdpDatagram.parse(raw)
        assert parsed == UdpDatagram(5000, 443, b"hello")

    def test_length_field_respected(self):
        raw = UdpDatagram(1, 2, b"abcdef").build() + b"\x99\x99"
        assert UdpDatagram.parse(raw).payload == b"abcdef"

    def test_bad_length_rejected(self):
        raw = bytearray(UdpDatagram(1, 2, b"ab").build())
        raw[4:6] = (100).to_bytes(2, "big")
        with pytest.raises(TruncatedError):
            UdpDatagram.parse(bytes(raw))

    @given(st.binary(max_size=200), st.integers(0, 65535), st.integers(0, 65535))
    def test_property_round_trip(self, payload, sport, dport):
        parsed = UdpDatagram.parse(UdpDatagram(sport, dport, payload).build())
        assert (parsed.src_port, parsed.dst_port, parsed.payload) == (
            sport, dport, payload
        )


class TestTcp:
    def test_round_trip(self):
        segment = TcpSegment(src_port=80, dst_port=50000, seq=1000, ack=2000,
                             flags=0x18, payload=b"http")
        parsed = TcpSegment.parse(segment.build())
        assert parsed.src_port == 80
        assert parsed.seq == 1000
        assert parsed.flags == 0x18
        assert parsed.payload == b"http"

    def test_options_round_trip(self):
        segment = TcpSegment(src_port=1, dst_port=2, seq=0, ack=0, flags=0x02,
                             payload=b"", options=b"\x02\x04\x05\xb4")
        parsed = TcpSegment.parse(segment.build())
        assert parsed.options == b"\x02\x04\x05\xb4"

    def test_misaligned_options_rejected(self):
        segment = TcpSegment(src_port=1, dst_port=2, seq=0, ack=0, flags=0,
                             payload=b"", options=b"\x01")
        with pytest.raises(ValueError):
            segment.build()

    def test_checksum_computed_with_ips(self):
        raw = TcpSegment(src_port=1, dst_port=2, seq=0, ack=0, flags=0x10,
                         payload=b"x").build("10.0.0.1", "10.0.0.2")
        assert raw[16:18] != b"\x00\x00"

    def test_bad_data_offset_rejected(self):
        raw = bytearray(TcpSegment(src_port=1, dst_port=2, seq=0, ack=0,
                                   flags=0, payload=b"").build())
        raw[12] = 0x10  # data offset 1 word < minimum 5
        with pytest.raises(TruncatedError):
            TcpSegment.parse(bytes(raw))
