"""Shared fixtures.

Simulated traces and pipeline outputs are expensive, so anything reused
across test modules is session-scoped and keyed by (app, network).
"""

from __future__ import annotations

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.filtering import TwoStageFilter

try:
    from hypothesis import HealthCheck, settings as hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a declared test extra
    pass
else:
    # Derandomized so CI failures reproduce locally from the same examples;
    # no deadline because shared session fixtures skew per-example timing.
    hypothesis_settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile("ci")

TEST_DURATION = 15.0
TEST_SCALE = 0.3


@pytest.fixture(scope="session")
def trace_cache():
    cache = {}

    def get(app: str, network: NetworkCondition, seed: int = 1, **overrides):
        key = (app, network, seed, tuple(sorted(overrides.items())))
        if key not in cache:
            config = CallConfig(
                network=network,
                seed=seed,
                call_duration=overrides.pop("call_duration", TEST_DURATION),
                media_scale=overrides.pop("media_scale", TEST_SCALE),
                **overrides,
            )
            cache[key] = get_simulator(app).simulate(config)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def pipeline_cache(trace_cache):
    """(app, network) -> (trace, filter_result, dpi_result, verdicts)."""
    cache = {}

    def get(app: str, network: NetworkCondition, seed: int = 1):
        key = (app, network, seed)
        if key not in cache:
            trace = trace_cache(app, network, seed)
            filter_result = TwoStageFilter(trace.window).apply(trace.records)
            dpi = DpiEngine().analyze_records(filter_result.kept_records)
            verdicts = ComplianceChecker().check(dpi.messages())
            cache[key] = (trace, filter_result, dpi, verdicts)
        return cache[key]

    return get
