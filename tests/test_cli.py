"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--app", "zoom", "--network", "cellular"]
        )
        assert args.app == "zoom"
        assert args.network.value == "cellular"

    def test_bad_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "zoom", "--network", "5g"])

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "skype"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dpi_stats_args(self):
        args = build_parser().parse_args(
            ["dpi-stats", "--app", "meet", "--no-fastpath"]
        )
        assert args.app == "meet"
        assert args.no_fastpath is True
        assert args.network is None


class TestCommands:
    def test_run(self, capsys):
        code = main(["run", "--app", "discord", "--network", "wifi_relay",
                     "--duration", "6", "--scale", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Volume compliance" in out
        assert "discord" in out

    def test_synthesize_then_pcap(self, tmp_path, capsys):
        pcap = tmp_path / "call.pcap"
        assert main(["synthesize", "--app", "whatsapp", "--network", "wifi_p2p",
                     "--duration", "6", "--scale", "0.2", "--out", str(pcap)]) == 0
        assert pcap.stat().st_size > 1000
        capsys.readouterr()
        assert main(["pcap", str(pcap)]) == 0
        out = capsys.readouterr().out
        assert "Datagram classes" in out

    def test_pcap_empty_file(self, tmp_path, capsys):
        from repro.packets.pcap import write_pcap
        empty = tmp_path / "empty.pcap"
        write_pcap(empty, [])
        assert main(["pcap", str(empty)]) == 1

    def test_dpi_stats(self, capsys):
        code = main(["dpi-stats", "--app", "discord", "--network", "wifi_p2p",
                     "--duration", "6", "--scale", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fast-path hits" in out
        assert "fast path: on" in out

    def test_dpi_stats_disabled(self, capsys):
        code = main(["dpi-stats", "--app", "discord", "--network", "wifi_p2p",
                     "--duration", "6", "--scale", "0.2", "--no-fastpath"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fast path: off" in out
        assert "fast-path hits     0" in out
