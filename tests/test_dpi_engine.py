"""Tests for the DPI engine: validation, overlap resolution, classification."""

import pytest

from repro.dpi import DatagramClass, DpiEngine, Protocol
from repro.packets.packet import PacketRecord
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage


def udp(t, payload, sport=50000, dport=3478):
    return PacketRecord(
        timestamp=t, src_ip="10.0.0.1", src_port=sport,
        dst_ip="20.0.0.2", dst_port=dport, transport="UDP", payload=payload,
    )


def rtp_stream_records(count=10, ssrc=0x1234, start_seq=100, prefix=b"",
                       payload_len=40, pt=96):
    records = []
    for i in range(count):
        packet = RtpPacket(
            payload_type=pt, sequence_number=start_seq + i,
            timestamp=1000 + 160 * i, ssrc=ssrc, payload=bytes(payload_len),
        )
        records.append(udp(1.0 + i * 0.02, prefix + packet.build()))
    return records


class TestRtpValidation:
    def test_continuous_stream_accepted(self):
        result = DpiEngine().analyze_records(rtp_stream_records())
        assert all(a.classification is DatagramClass.STANDARD for a in result.analyses)
        assert len(result.messages()) == 10

    def test_single_packet_rejected(self):
        # One lone RTP-shaped datagram has no sequence-continuity evidence.
        result = DpiEngine().analyze_records(rtp_stream_records(count=1))
        assert result.analyses[0].classification is DatagramClass.FULLY_PROPRIETARY

    def test_discontinuous_group_rejected(self):
        records = []
        for i, seq in enumerate([5, 30000, 12, 60000, 7, 40000]):
            packet = RtpPacket(payload_type=96, sequence_number=seq,
                               timestamp=0, ssrc=0x77, payload=bytes(20))
            records.append(udp(1.0 + i * 0.02, packet.build()))
        result = DpiEngine().analyze_records(records)
        assert not result.messages()

    def test_proprietary_header_detected(self):
        result = DpiEngine().analyze_records(
            rtp_stream_records(prefix=b"\x04\x64" + bytes(22))
        )
        for analysis in result.analyses:
            assert analysis.classification is DatagramClass.PROPRIETARY_HEADER
            assert len(analysis.proprietary_header) == 24
            assert analysis.messages[0].offset == 24

    def test_offset_limit_hides_deep_messages(self):
        records = rtp_stream_records(prefix=bytes(150))
        assert DpiEngine(max_offset=200).analyze_records(records).messages()
        assert not DpiEngine(max_offset=100).analyze_records(records).messages()

    def test_dual_rtp_recovered(self):
        # Zoom's pattern: short probe + media frame, same SSRC/timestamp,
        # consecutive sequence numbers, in one datagram.
        records = rtp_stream_records(count=6, ssrc=0x99, start_seq=10)
        first = RtpPacket(payload_type=110, sequence_number=16, timestamp=5000,
                          ssrc=0x99, payload=bytes(7))
        second = RtpPacket(payload_type=110, sequence_number=17, timestamp=5000,
                           ssrc=0x99, payload=bytes(900))
        records.append(udp(2.0, first.build() + second.build()))
        result = DpiEngine().analyze_records(records)
        dual = [a for a in result.analyses if len(a.messages) == 2]
        assert len(dual) == 1
        lengths = [m.length for m in dual[0].messages]
        assert lengths[0] == 12 + 7  # truncated at the second packet


class TestStunExtraction:
    def test_wrapped_stun_found(self):
        message = StunMessage(msg_type=0x0001, transaction_id=bytes(12),
                              attributes=[StunAttribute(0x8022, b"agent")])
        records = [udp(1.0, b"\x60\x00" + bytes(10) + message.build())]
        result = DpiEngine().analyze_records(records)
        assert result.analyses[0].classification is DatagramClass.PROPRIETARY_HEADER
        extracted = result.analyses[0].messages[0]
        assert extracted.protocol is Protocol.STUN_TURN
        assert extracted.message.msg_type == 0x0001

    def test_undefined_type_still_extracted(self):
        # The whole point of the custom DPI: unknown message types with
        # valid structure are surfaced, not dropped.
        message = StunMessage(msg_type=0x0801, transaction_id=bytes(12),
                              attributes=[StunAttribute(0x4003, b"\xff")])
        result = DpiEngine().analyze_records([udp(1.0, message.build())])
        assert result.messages()[0].message.msg_type == 0x0801

    def test_nested_rtp_in_data_attribute_not_double_counted(self):
        inner = RtpPacket(payload_type=96, sequence_number=1, timestamp=2,
                          ssrc=3, payload=bytes(20)).build()
        records = []
        for i in range(5):
            message = StunMessage(
                msg_type=0x0016, transaction_id=bytes([i] * 12),
                attributes=[StunAttribute(0x0013, inner)],
            )
            records.append(udp(1.0 + i, message.build()))
        result = DpiEngine().analyze_records(records)
        protocols = {m.protocol for m in result.messages()}
        assert protocols == {Protocol.STUN_TURN}


class TestFullyProprietary:
    def test_random_noise_classified(self):
        import random
        rng = random.Random(3)
        records = [
            udp(1.0 + i, bytes(rng.getrandbits(8) for _ in range(200)))
            for i in range(20)
        ]
        result = DpiEngine().analyze_records(records)
        fully = sum(1 for a in result.analyses
                    if a.classification is DatagramClass.FULLY_PROPRIETARY)
        assert fully >= 18  # allow the rare structural coincidence

    def test_filler_classified(self):
        records = [udp(1.0 + i, b"\x01" * 1000) for i in range(5)]
        result = DpiEngine().analyze_records(records)
        assert all(a.classification is DatagramClass.FULLY_PROPRIETARY
                   for a in result.analyses)


class TestEngineMisc:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            DpiEngine(max_offset=-1)

    def test_tcp_records_ignored(self):
        record = PacketRecord(
            timestamp=1.0, src_ip="1.1.1.1", src_port=1, dst_ip="2.2.2.2",
            dst_port=2, transport="TCP", payload=b"\x80" * 40,
        )
        assert not DpiEngine().analyze_records([record]).analyses

    def test_result_aggregations(self):
        result = DpiEngine().analyze_records(rtp_stream_records())
        assert result.protocol_counts() == {Protocol.RTP: 10}
        assert result.by_class()[DatagramClass.STANDARD] == 10

    def test_protocol_subset(self):
        records = rtp_stream_records()
        engine = DpiEngine(protocols=(Protocol.STUN_TURN,))
        assert not engine.analyze_records(records).messages()

    def test_analyses_time_sorted(self):
        records = rtp_stream_records()[::-1]
        result = DpiEngine().analyze_records(records)
        times = [a.record.timestamp for a in result.analyses]
        assert times == sorted(times)


class TestQuicStreamContext:
    def _long(self, dcid):
        import struct
        from repro.protocols.quic.varint import encode_varint
        out = bytes([0xC1]) + struct.pack("!I", 1)
        out += bytes([len(dcid)]) + dcid + bytes([8]) + b"\x02" * 8
        out += encode_varint(0) + encode_varint(30) + bytes(30)
        return out

    def test_short_header_requires_known_cid(self):
        dcid = b"\x07" * 8
        records = [
            udp(1.0, self._long(dcid), dport=443),
            udp(2.0, bytes([0x41]) + dcid + bytes(30), dport=443),
            # Same shape but unknown CID on a different stream: rejected.
            udp(3.0, bytes([0x41]) + b"\x09" * 8 + bytes(30), dport=444),
        ]
        result = DpiEngine().analyze_records(records)
        quic = [m for m in result.messages() if m.protocol is Protocol.QUIC]
        assert len(quic) == 2
        shorts = [m for m in quic if not m.message.is_long]
        assert len(shorts) == 1 and bytes(shorts[0].message.dcid) == dcid
