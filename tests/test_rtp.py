"""Tests for the RTP codec and RFC 8285 header extensions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.rtp.extensions import (
    ONE_BYTE_PROFILE,
    ExtensionElement,
    HeaderExtension,
    build_one_byte_extension,
    build_two_byte_extension,
    parse_one_byte_elements,
    parse_two_byte_elements,
)
from repro.protocols.rtp.header import RtpPacket, RtpParseError, looks_like_rtp
from repro.protocols.rtp.payload_types import (
    is_dynamic_payload_type,
    payload_type_name,
)


def make_packet(**overrides):
    defaults = dict(
        payload_type=96,
        sequence_number=1234,
        timestamp=567890,
        ssrc=0xDEADBEEF,
        payload=b"media",
    )
    defaults.update(overrides)
    return RtpPacket(**defaults)


class TestRtpHeader:
    def test_round_trip_minimal(self):
        packet = make_packet()
        assert RtpPacket.parse(packet.build()) == packet

    def test_round_trip_marker(self):
        packet = make_packet(marker=True)
        assert RtpPacket.parse(packet.build()).marker

    def test_round_trip_csrcs(self):
        packet = make_packet(csrcs=[1, 2, 3])
        parsed = RtpPacket.parse(packet.build())
        assert parsed.csrcs == [1, 2, 3]

    def test_too_many_csrcs_rejected(self):
        with pytest.raises(ValueError):
            make_packet(csrcs=list(range(16))).build()

    def test_round_trip_padding(self):
        packet = make_packet(padding_length=4)
        raw = packet.build()
        assert raw[0] & 0x20
        parsed = RtpPacket.parse(raw)
        assert parsed.padding_length == 4
        assert parsed.payload == b"media"

    def test_invalid_padding_strict_raises(self):
        raw = bytearray(make_packet().build())
        raw[0] |= 0x20  # padding bit set, pad count byte is payload's last byte
        raw[-1] = 0  # zero pad count is illegal
        with pytest.raises(RtpParseError):
            RtpPacket.parse(bytes(raw))

    def test_invalid_padding_lenient_flagged(self):
        raw = bytearray(make_packet().build())
        raw[0] |= 0x20
        raw[-1] = 200  # exceeds payload
        parsed = RtpPacket.parse(bytes(raw), strict=False)
        assert parsed.invalid_padding

    def test_wrong_version_rejected(self):
        raw = bytearray(make_packet().build())
        raw[0] = (raw[0] & 0x3F) | (1 << 6)
        with pytest.raises(RtpParseError):
            RtpPacket.parse(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(RtpParseError):
            RtpPacket.parse(b"\x80\x60\x00\x01")

    def test_round_trip_extension(self):
        extension = HeaderExtension(profile=0xBEDE, data=b"\x10\x01\x00\x00")
        packet = make_packet(extension=extension)
        parsed = RtpPacket.parse(packet.build())
        assert parsed.extension == extension

    def test_wire_length_accounting(self):
        packet = make_packet(csrcs=[1], extension=HeaderExtension(0xBEDE, bytes(4)))
        assert packet.wire_length == len(packet.build())
        assert packet.header_length == 12 + 4 + 8

    @given(
        st.integers(0, 127), st.integers(0, 65535),
        st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
        st.binary(max_size=100),
    )
    def test_property_round_trip(self, pt, seq, ts, ssrc, payload):
        packet = RtpPacket(payload_type=pt, sequence_number=seq, timestamp=ts,
                           ssrc=ssrc, payload=payload)
        assert RtpPacket.parse(packet.build()) == packet


class TestOneByteExtensions:
    def test_build_and_parse(self):
        extension = build_one_byte_extension([(1, b"\x7f"), (3, b"\x01\x02")])
        assert extension.profile == ONE_BYTE_PROFILE
        elements = extension.elements()
        assert [(e.ext_id, e.data) for e in elements] == [(1, b"\x7f"), (3, b"\x01\x02")]

    def test_padding_bytes_skipped(self):
        extension = build_one_byte_extension([(1, b"\x00")])
        # data is 2 bytes + 2 padding; padding must not surface as elements.
        assert len(extension.elements()) == 1

    def test_id_zero_with_length_preserved(self):
        # Discord's anomaly: 0x03 = ID 0, length nibble 3.
        data = bytes([0x03]) + b"abcd" + bytes(3)
        elements = parse_one_byte_elements(data)
        assert elements[0].ext_id == 0
        assert elements[0].declared_length == 4

    def test_id15_terminates(self):
        data = bytes([0xF0, 0xAA, 0xBB, 0xCC])
        assert parse_one_byte_elements(data) == []

    def test_invalid_build_args(self):
        with pytest.raises(ValueError):
            build_one_byte_extension([(0, b"x")])
        with pytest.raises(ValueError):
            build_one_byte_extension([(15, b"x")])
        with pytest.raises(ValueError):
            build_one_byte_extension([(1, b"")])
        with pytest.raises(ValueError):
            build_one_byte_extension([(1, bytes(17))])


class TestTwoByteExtensions:
    def test_build_and_parse(self):
        extension = build_two_byte_extension([(5, b""), (200, b"abc")])
        assert extension.is_two_byte
        elements = extension.elements()
        assert [(e.ext_id, e.data) for e in elements] == [(5, b""), (200, b"abc")]

    def test_custom_appbits_profile(self):
        extension = build_two_byte_extension([(1, b"x")], profile=0x100A)
        assert extension.is_two_byte

    def test_non_8285_profile_has_no_elements(self):
        extension = HeaderExtension(profile=0x8001, data=bytes(8))
        assert extension.elements() == []
        assert not extension.is_one_byte
        assert not extension.is_two_byte

    def test_unaligned_data_rejected_on_build(self):
        with pytest.raises(ValueError):
            HeaderExtension(profile=0xBEDE, data=b"abc").build()


class TestPayloadTypes:
    def test_static_names(self):
        assert payload_type_name(0) == "PCMU"
        assert payload_type_name(8) == "PCMA"
        assert payload_type_name(34) == "H263"

    def test_dynamic_range(self):
        assert is_dynamic_payload_type(96)
        assert is_dynamic_payload_type(127)
        assert not is_dynamic_payload_type(95)
        assert payload_type_name(111) == "dynamic-111"

    def test_unassigned_returns_none(self):
        assert payload_type_name(35) is None


class TestLooksLikeRtp:
    def test_accepts_real_packet(self):
        assert looks_like_rtp(make_packet().build())

    def test_rejects_version_1(self):
        raw = bytearray(make_packet().build())
        raw[0] = 0x40
        assert not looks_like_rtp(bytes(raw))

    def test_rejects_rtcp_range(self):
        # PT 72 with marker bit = second byte 200 -> RTCP per RFC 5761.
        raw = bytearray(make_packet().build())
        raw[1] = 200
        assert not looks_like_rtp(bytes(raw))

    def test_rejects_truncated_extension(self):
        packet = make_packet(extension=HeaderExtension(0xBEDE, bytes(8)))
        raw = packet.build()[:16]
        assert not looks_like_rtp(raw)

    def test_rejects_overrun_csrcs(self):
        raw = bytearray(make_packet(payload=b"").build())
        raw[0] |= 0x0F  # claim 15 CSRCs that are not there
        assert not looks_like_rtp(bytes(raw))

    @given(st.binary(max_size=80))
    def test_never_crashes(self, data):
        looks_like_rtp(data)
