"""Tests for the AES and SRTP/SRTCP substrates (FIPS-197 / RFC 3711)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, aes_ctr_keystream, xor_bytes
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.srtp import (
    AuthenticationError,
    KeyDerivationLabel,
    ReplayError,
    SrtcpCryptoContext,
    SrtpCryptoContext,
    derive_key,
)

MASTER_KEY = bytes.fromhex("E1F97A0D3E018BE0D64FA32C06DE4139")
MASTER_SALT = bytes.fromhex("0EC675AD498AFEEBB6960B3AABE6")


class TestAes:
    def test_fips197_aes128(self):
        cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        out = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out == bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_fips197_aes192(self):
        cipher = AES(bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617"))
        out = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out == bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")

    def test_fips197_aes256(self):
        cipher = AES(bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"))
        out = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out == bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"tiny")

    def test_ctr_keystream_deterministic(self):
        a = aes_ctr_keystream(bytes(16), 0, 48)
        b = aes_ctr_keystream(bytes(16), 0, 48)
        assert a == b
        assert len(a) == 48

    def test_ctr_counter_advances(self):
        one = aes_ctr_keystream(bytes(16), 0, 16)
        two = aes_ctr_keystream(bytes(16), 1, 16)
        assert one != two
        both = aes_ctr_keystream(bytes(16), 0, 32)
        assert both == one + two

    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\x0f", b"\xf0\xf0") == b"\xff\xff"
        with pytest.raises(ValueError):
            xor_bytes(b"abc", b"a")


class TestKeyDerivation:
    """RFC 3711 appendix B.3 test vectors."""

    def test_cipher_key(self):
        key = derive_key(MASTER_KEY, MASTER_SALT,
                         KeyDerivationLabel.RTP_ENCRYPTION, 16)
        assert key == bytes.fromhex("C61E7A93744F39EE10734AFE3FF7A087")

    def test_cipher_salt(self):
        salt = derive_key(MASTER_KEY, MASTER_SALT,
                          KeyDerivationLabel.RTP_SALT, 14)
        assert salt == bytes.fromhex("30CBBC08863D8C85D49DB34A9AE1")

    def test_auth_key(self):
        auth = derive_key(MASTER_KEY, MASTER_SALT,
                          KeyDerivationLabel.RTP_AUTH, 20)
        assert auth == bytes.fromhex(
            "CEBE321F6FF7716B6FD4AB49AF256A156D38BAA4"
        )

    def test_bad_salt_length(self):
        with pytest.raises(ValueError):
            derive_key(MASTER_KEY, b"short", 0, 16)

    def test_labels_produce_distinct_keys(self):
        keys = {
            derive_key(MASTER_KEY, MASTER_SALT, label, 16)
            for label in KeyDerivationLabel
        }
        assert len(keys) == len(KeyDerivationLabel)


def rtp_bytes(seq=100, payload=b"confidential-media"):
    return RtpPacket(payload_type=96, sequence_number=seq, timestamp=1234,
                     ssrc=0xCAFEBABE, payload=payload).build()


class TestSrtp:
    def test_protect_unprotect_round_trip(self):
        sender = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        plain = rtp_bytes()
        protected = sender.protect(plain)
        assert len(protected) == len(plain) + 10
        assert receiver.unprotect(protected) == plain

    def test_header_stays_in_clear(self):
        context = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        plain = rtp_bytes()
        protected = context.protect(plain)
        assert protected[:12] == plain[:12]
        assert protected[12:-10] != plain[12:]

    def test_tamper_detected(self):
        sender = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        protected = bytearray(sender.protect(rtp_bytes()))
        protected[14] ^= 0x01
        with pytest.raises(AuthenticationError):
            receiver.unprotect(bytes(protected))

    def test_wrong_key_rejected(self):
        sender = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtpCryptoContext(bytes(16), MASTER_SALT)
        with pytest.raises(AuthenticationError):
            receiver.unprotect(sender.protect(rtp_bytes()))

    def test_replay_rejected(self):
        sender = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        protected = sender.protect(rtp_bytes())
        receiver.unprotect(protected)
        with pytest.raises(ReplayError):
            receiver.unprotect(protected)

    def test_roc_participates_in_auth(self):
        sender = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        protected = sender.protect(rtp_bytes(), roc=3)
        with pytest.raises(AuthenticationError):
            receiver.unprotect(protected, roc=4)

    def test_extension_header_preserved(self):
        from repro.protocols.rtp.extensions import build_one_byte_extension
        packet = RtpPacket(
            payload_type=96, sequence_number=7, timestamp=8, ssrc=9,
            payload=b"media", extension=build_one_byte_extension([(1, b"\x42")]),
        ).build()
        context = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        recovered = SrtpCryptoContext(MASTER_KEY, MASTER_SALT).unprotect(
            context.protect(packet)
        )
        assert recovered == packet

    @settings(max_examples=20)
    @given(st.binary(min_size=1, max_size=300), st.integers(0, 65535))
    def test_property_round_trip(self, payload, seq):
        sender = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtpCryptoContext(MASTER_KEY, MASTER_SALT)
        plain = rtp_bytes(seq=seq, payload=payload)
        assert receiver.unprotect(sender.protect(plain)) == plain


class TestSrtcp:
    def _rtcp(self):
        from repro.protocols.rtcp.packets import SenderReport
        return SenderReport(ssrc=0x1234, ntp_timestamp=5, rtp_timestamp=6,
                            packet_count=7, octet_count=8).to_packet().build()

    def test_round_trip(self):
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        plain = self._rtcp()
        protected = sender.protect(plain)
        recovered, index = receiver.unprotect(protected)
        assert recovered == plain
        assert index == 1  # indexes start at 1 and increase

    def test_index_increments(self):
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        for expected in (1, 2, 3):
            _plain, index = receiver.unprotect(sender.protect(self._rtcp()))
            assert index == expected

    def test_framing_matches_study_model(self):
        """The protected layout is what the compliance layer classifies."""
        from repro.core.rtcp_rules import classify_trailer
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        plain = self._rtcp()
        protected = sender.protect(plain)
        # First 8 bytes (header + SSRC) stay in the clear.
        assert protected[:8] == plain[:8]
        trailer = protected[len(plain):]
        assert classify_trailer(trailer) == "srtcp"
        # Dropping the tag produces exactly the Google Meet violation.
        assert classify_trailer(trailer[:4]) == "srtcp-no-tag"

    def test_tamper_detected(self):
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        protected = bytearray(sender.protect(self._rtcp()))
        protected[10] ^= 0xFF
        with pytest.raises(AuthenticationError):
            receiver.unprotect(bytes(protected))

    def test_replay_rejected(self):
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        protected = sender.protect(self._rtcp())
        receiver.unprotect(protected)
        with pytest.raises(ReplayError):
            receiver.unprotect(protected)

    def test_explicit_index(self):
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        receiver = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        protected = sender.protect(self._rtcp(), index=500)
        _plain, index = receiver.unprotect(protected)
        assert index == 500

    def test_index_range_enforced(self):
        sender = SrtcpCryptoContext(MASTER_KEY, MASTER_SALT)
        with pytest.raises(ValueError):
            sender.protect(self._rtcp(), index=1 << 31)
