"""Tests for STUN MESSAGE-INTEGRITY (RFC 8489 §14.5, §9)."""

import pytest

from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.integrity import (
    add_message_integrity,
    long_term_key,
    short_term_key,
    verify_message_integrity,
)
from repro.protocols.stun.message import StunMessage


def message(attrs=()):
    return StunMessage(
        msg_type=0x0001,
        transaction_id=bytes(range(12)),
        attributes=[StunAttribute(int(AttributeType.USERNAME), b"evtj:h6vY")]
        + list(attrs),
    )


class TestKeys:
    def test_short_term(self):
        assert short_term_key("VOkJxbRl1RmTxUk/WvJxBt") == b"VOkJxbRl1RmTxUk/WvJxBt"

    def test_long_term_is_md5(self):
        import hashlib
        key = long_term_key("user", "realm.org", "pass")
        assert key == hashlib.md5(b"user:realm.org:pass").digest()
        assert len(key) == 16


class TestIntegrity:
    KEY = short_term_key("VOkJxbRl1RmTxUk/WvJxBt")

    def test_round_trip(self):
        raw = add_message_integrity(message(), self.KEY)
        assert verify_message_integrity(raw, self.KEY)

    def test_wrong_key_fails(self):
        raw = add_message_integrity(message(), self.KEY)
        assert not verify_message_integrity(raw, b"other-password")

    def test_tamper_detected(self):
        raw = bytearray(add_message_integrity(message(), self.KEY))
        raw[25] ^= 0x01  # flip a bit inside the USERNAME attribute
        assert not verify_message_integrity(bytes(raw), self.KEY)

    def test_rfc5769_vector(self):
        """RFC 5769 §2.1: sample request with known HMAC."""
        raw = bytes.fromhex(
            "000100582112a442b7e7a701bc34d686fa87dfae"
            "802200105354554e207465737420636c69656e74"
            "002400046e0001ff80290008932ff9b151263b36"
            "000600096576746a3a68367659202020"
            "00080014"  # MESSAGE-INTEGRITY TLV header
            "9aeaa70cbfd8cb56781ef2b5b2d3f249c1b571a2"
            "80280004e57a3bcf"
        )
        assert verify_message_integrity(raw, self.KEY)

    def test_rfc5769_response_vector(self):
        """RFC 5769 §2.2: sample IPv4 response."""
        raw = bytes.fromhex(
            "0101003c2112a442b7e7a701bc34d686fa87dfae"
            "8022000b7465737420766563746f7220"
            "002000080001a147e112a643"
            "000800142b91f599fd9e90c38c7489f92af9ba53f06be7d7"
            "80280004c07d4c96"
        )
        assert verify_message_integrity(raw, self.KEY)

    def test_rfc5769_ipv6_response_vector(self):
        """RFC 5769 §2.3: sample IPv6 response."""
        raw = bytes.fromhex(
            "010100482112a442b7e7a701bc34d686fa87dfae"
            "8022000b7465737420766563746f7220"
            "002000140002a1470113a9faa5d3f179bc25f4b5bed2b9d9"
            "00080014a382954e4be67bf11784c97c8292c275bfe3ed41"
            "80280004c8fb0b4c"
        )
        assert verify_message_integrity(raw, self.KEY)

    def test_rfc5769_long_term_vector(self):
        """RFC 5769 §2.4: request with long-term authentication.

        The message bytes (header, UTF-8 username, nonce, realm) are the
        RFC's; the resulting HMAC must start with the RFC-printed prefix
        ``f6 70 24 65 6d`` and the full message must then self-verify.
        """
        import hmac as hmac_mod
        import hashlib as hashlib_mod

        body = bytes.fromhex(
            "000100602112a44278ad3433c6ad72c029da412e"
            "00060012"
            "e3839ee38388e383aae38383e382afe382b90000"
            "0015001c"
            "662f2f3439396b39353464364f4c33346f4c"
            "39465354767936347341"
            "0014000b"
            "6578616d706c652e6f726700"
        )
        username = bytes.fromhex("e3839ee38388e383aae38383e382afe382b9")
        key = long_term_key(username.decode("utf-8"), "example.org", "TheMatrIX")
        digest = hmac_mod.new(key, body, hashlib_mod.sha1).digest()
        assert digest.hex().startswith("f67024656d")  # RFC 5769 §2.4 prefix
        raw = body + bytes.fromhex("00080014") + digest
        assert verify_message_integrity(raw, key)

    def test_missing_mi_fails(self):
        raw = message().build()
        assert not verify_message_integrity(raw, self.KEY)

    def test_garbage_fails(self):
        assert not verify_message_integrity(b"\x00\x01\x00", self.KEY)

    def test_placeholder_attributes_replaced(self):
        original = message(attrs=[
            StunAttribute(int(AttributeType.MESSAGE_INTEGRITY), bytes(20)),
        ])
        raw = add_message_integrity(original, self.KEY)
        parsed = StunMessage.parse(raw)
        mi_attrs = [a for a in parsed.attributes
                    if a.attr_type == AttributeType.MESSAGE_INTEGRITY]
        assert len(mi_attrs) == 1
        assert verify_message_integrity(raw, self.KEY)

    def test_compatible_with_checker(self):
        """A message with genuine MI passes the compliance rules."""
        from repro.core.stun_rules import StunSessionContext, check_stun
        from repro.dpi.messages import ExtractedMessage, Protocol
        from repro.packets.packet import PacketRecord

        raw = add_message_integrity(message(), self.KEY)
        record = PacketRecord(timestamp=1.0, src_ip="1.1.1.1", src_port=1,
                              dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                              payload=raw)
        extracted = ExtractedMessage(
            protocol=Protocol.STUN_TURN, offset=0, length=len(raw),
            message=StunMessage.parse(raw), record=record,
        )
        assert check_stun(extracted, StunSessionContext([extracted])) == []
