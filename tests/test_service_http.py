"""Daemon-layer tests: ingest plumbing, HTTP/SSE surface, stats schema.

The end-to-end test drives a real ``ThreadingHTTPServer`` bound to an
ephemeral port — the same wiring ``rtc-compliance serve`` uses — and
pins the service's core guarantee: the SSE verdict stream for a replayed
cell is bit-identical to the batch pipeline over the same records.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.apps import NetworkCondition
from repro.conformance.golden import CorpusConfig, cell_records
from repro.core.metrics import ComplianceSummary
from repro.experiments.runner import ExperimentConfig, run_cell_pipeline
from repro.packets.pcap import read_pcap, write_pcap
from repro.pipeline import StageStats
from repro.service.http import ComplianceService, EventStream, make_server
from repro.service.ingest import (
    BoundedQueue,
    PcapDirectoryWatcher,
    ReplaySource,
    produce,
    pump,
)

# ---------------------------------------------------------------------------
# StageStats wire schema (satellite: one serializer for every consumer)
# ---------------------------------------------------------------------------

STATS_KEYS = [
    "name",
    "records_in",
    "records_out",
    "wall_seconds",
    "peak_buffered",
    "chunks",
]


def test_stage_stats_to_json_schema_is_stable():
    stat = StageStats(
        name="dpi", records_in=10, records_out=8, wall_seconds=0.5,
        peak_buffered=4, chunks=2,
    )
    payload = stat.to_json()
    assert list(payload) == STATS_KEYS
    assert payload == {
        "name": "dpi", "records_in": 10, "records_out": 8,
        "wall_seconds": 0.5, "peak_buffered": 4, "chunks": 2,
    }
    # Historical alias and the JSON path are literally the same method.
    assert StageStats.as_dict is StageStats.to_json
    assert json.loads(json.dumps(payload)) == payload


def test_stage_stats_snapshot_is_detached():
    stat = StageStats(name="check", records_in=5)
    copy = stat.snapshot()
    copy.records_in = 99
    copy.peak_buffered = 99
    assert stat.records_in == 5
    assert stat.peak_buffered == 0
    assert copy.to_json()["records_in"] == 99


# ---------------------------------------------------------------------------
# Ingest: bounded queue, replay source, pcap directory watcher
# ---------------------------------------------------------------------------

_RECORDS = cell_records("meet", NetworkCondition.WIFI_RELAY, CorpusConfig())


def test_bounded_queue_block_policy_applies_backpressure():
    queue = BoundedQueue(maxsize=2, policy="block")
    assert queue.put([1]) and queue.put([2])
    unblocked = threading.Event()

    def producer():
        queue.put([3])  # must wait: queue is full
        unblocked.set()

    thread = threading.Thread(target=producer)
    thread.start()
    assert not unblocked.wait(timeout=0.2), "put did not block on a full queue"
    assert queue.get() == [1]
    assert unblocked.wait(timeout=2.0), "put never unblocked after a get"
    thread.join()
    assert queue.counters.puts == 3
    assert queue.counters.blocked >= 1
    assert queue.counters.drops == 0


def test_bounded_queue_drop_oldest_sheds_and_counts():
    queue = BoundedQueue(maxsize=2, policy="drop_oldest")
    for batch in ([1], [2], [3]):
        assert queue.put(batch)
    assert len(queue) == 2
    assert queue.counters.drops == 1
    assert queue.counters.puts == 3
    assert queue.get() == [2]  # the oldest batch [1] was shed
    assert queue.get() == [3]
    assert queue.counters.to_json() == {"puts": 3, "drops": 1, "blocked": 0}


def test_bounded_queue_close_semantics():
    queue = BoundedQueue(maxsize=4)
    queue.put([1])
    queue.close()
    assert not queue.put([2]), "put after close must be refused"
    assert queue.get() == [1], "queued batches stay readable after close"
    assert queue.get() is None, "drained+closed queue returns None"
    # A blocked producer wakes (and fails) when the queue closes.
    full = BoundedQueue(maxsize=1)
    full.put([1])
    results = []
    thread = threading.Thread(target=lambda: results.append(full.put([2])))
    thread.start()
    time.sleep(0.05)
    full.close()
    thread.join(timeout=2.0)
    assert results == [False]


def test_bounded_queue_rejects_bad_config():
    with pytest.raises(ValueError):
        BoundedQueue(maxsize=0)
    with pytest.raises(ValueError):
        BoundedQueue(policy="drop_newest")


def test_replay_source_afap_preserves_records():
    source = ReplaySource(_RECORDS, batch_size=100)
    batches = list(source)
    assert all(len(b) <= 100 for b in batches)
    assert [r for batch in batches for r in batch] == _RECORDS


def test_replay_source_clock_pacing_preserves_records():
    # 1000x speed: an 8 s capture replays in well under a second while
    # still going through the sleep-until-due path.
    source = ReplaySource(_RECORDS, batch_size=200, pace="clock", speed=1000.0)
    start = time.monotonic()
    batches = list(source)
    assert [r for batch in batches for r in batch] == _RECORDS
    assert time.monotonic() - start < 5.0


def test_replay_source_rejects_bad_config():
    with pytest.raises(ValueError):
        ReplaySource([], pace="realtime")
    with pytest.raises(ValueError):
        ReplaySource([], speed=0.0)


def test_produce_pump_roundtrip():
    queue = BoundedQueue(maxsize=4)
    fed = []
    producer = threading.Thread(
        target=produce, args=(ReplaySource(_RECORDS, batch_size=64), queue)
    )
    producer.start()
    count = pump(queue, fed.extend, poll_timeout=0.05)
    producer.join()
    assert count == len(_RECORDS)
    assert fed == _RECORDS
    assert queue.closed


def test_pcap_directory_watcher_picks_up_stable_files(tmp_path):
    udp = [r for r in _RECORDS if r.transport == "UDP"]
    write_pcap(tmp_path / "rotate-000.pcap", udp[:100])
    write_pcap(tmp_path / "rotate-001.pcap", udp[100:200])
    (tmp_path / "ignored.txt").write_text("not a capture")
    watcher = PcapDirectoryWatcher(
        str(tmp_path), batch_size=64, poll_interval=0.01, drain_once=True
    )
    records = [r for batch in watcher for r in batch]
    expected = read_pcap(tmp_path / "rotate-000.pcap") + read_pcap(
        tmp_path / "rotate-001.pcap"
    )
    assert len(records) == 200
    assert [r.payload for r in records] == [r.payload for r in expected]


# ---------------------------------------------------------------------------
# Service registry (HTTP-free): lifecycle, errors, shutdown
# ---------------------------------------------------------------------------


def _wait_closed(service, session_id, timeout=30.0):
    handle = service.get(session_id)
    assert handle.done.wait(timeout=timeout), "session never closed"
    return handle


def test_service_rejects_bad_specs():
    service = ComplianceService()
    for spec, fragment in [
        ({"app": "not-an-app"}, "bad session spec"),
        ({"network": "wifi_relay"}, "need an 'app'"),
        ({"app": "meet", "network": "dialup"}, "bad session spec"),
        ({"source": "carrier-pigeon"}, "unknown source"),
        ({"source": {"kind": "pcap_dir"}}, "need a 'directory'"),
        ({"app": "meet", "eviction": "sometimes"}, "bad session spec"),
    ]:
        with pytest.raises(Exception) as excinfo:
            service.create_session(spec)
        assert fragment in str(excinfo.value)
    assert service.list_sessions() == []


def test_service_shutdown_drains_and_refuses_new_sessions():
    service = ComplianceService()
    created = service.create_session(
        {"app": "meet", "network": "wifi_relay", "duration": 2.0,
         "scale": 0.2, "seed": 1}
    )
    service.shutdown()
    handle = service.get(created["id"])
    assert handle.state == "closed"
    assert service.health()["status"] == "shutting-down"
    with pytest.raises(Exception) as excinfo:
        service.create_session({"app": "meet"})
    assert "shutting down" in str(excinfo.value)


def test_service_defaults_merge_under_spec():
    service = ComplianceService(defaults={"impairment": "none", "seed": 7})
    created = service.create_session(
        {"app": "meet", "network": "wifi_relay", "duration": 2.0, "scale": 0.2}
    )
    handle = _wait_closed(service, created["id"])
    assert handle.spec["seed"] == 7
    assert handle.spec["impairment"] == "none"


def test_service_pcap_dir_session(tmp_path):
    udp = [r for r in _RECORDS if r.transport == "UDP"]
    write_pcap(tmp_path / "capture-000.pcap", udp)
    expected = len(read_pcap(tmp_path / "capture-000.pcap"))
    service = ComplianceService()
    created = service.create_session(
        {
            "source": {
                "kind": "pcap_dir",
                "directory": str(tmp_path),
                "poll_interval": 0.02,
            },
            "eviction": "deadline",  # coerced to idle: no window known
        }
    )
    handle = service.get(created["id"])
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if handle.session.records_fed >= expected:
            break
        time.sleep(0.05)
    payload = service.delete_session(created["id"])
    assert payload["state"] == "closed"
    assert handle.session.records_fed == expected
    assert handle.result is not None and handle.result.verdicts
    assert handle.result.filter_result is None
    assert handle.session._eviction.mode == "idle"


def test_event_stream_frame_format():
    frame = EventStream.frame("verdict", {"index": 0}).decode("utf-8")
    assert frame == 'event: verdict\ndata: {"index": 0}\n\n'


# ---------------------------------------------------------------------------
# HTTP end-to-end over a real server on an ephemeral port
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def daemon():
    server = make_server("127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _delete(base, path):
    request = urllib.request.Request(base + path, method="DELETE")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _read_sse(base, path, timeout=120):
    events = []
    event_name = None
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith("event: "):
                event_name = line[len("event: "):]
            elif line.startswith("data: "):
                events.append((event_name, json.loads(line[len("data: "):])))
                if event_name == "end":
                    break
    return events


def test_healthz(daemon):
    status, payload = _get(daemon, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert set(payload["sessions"]) == {"running", "closed"}


def test_http_errors(daemon):
    for method, path in [
        (_get, "/sessions/nope/stats"),
        (_get, "/sessions/nope/events"),
        (_get, "/no/such/route"),
    ]:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            method(daemon, path)
        assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(daemon, "/sessions", {"app": "not-an-app"})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _delete(daemon, "/sessions/nope")
    assert excinfo.value.code == 404


def test_sse_verdict_stream_matches_batch(daemon):
    """The acceptance criterion: SSE verdicts == batch verdicts, in order."""
    spec = {
        "app": "meet",
        "network": "wifi_relay",
        "duration": 4.0,
        "scale": 0.3,
        "seed": 3,
    }
    batch = run_cell_pipeline(
        "meet",
        NetworkCondition.WIFI_RELAY,
        ExperimentConfig(call_duration=4.0, media_scale=0.3, seed=3),
    )

    status, created = _post(daemon, "/sessions", spec)
    assert status == 201 and created["state"] == "running"
    session_id = created["id"]

    events = _read_sse(daemon, f"/sessions/{session_id}/events")
    kinds = [name for name, _ in events]
    assert kinds[0] == "snapshot"
    assert kinds[-1] == "end"
    assert "summary" in kinds

    verdict_events = [data for name, data in events if name == "verdict"]
    assert [e["index"] for e in verdict_events] == list(
        range(len(batch.verdicts))
    )
    expected = [
        {
            "timestamp": v.message.timestamp,
            "protocol": v.message.type_key()[0],
            "type": v.message.type_key()[1],
            "compliant": v.compliant,
            "violations": [
                [int(criterion), code] for criterion, code in v.violation_keys()
            ],
        }
        for v in batch.verdicts
    ]
    streamed = [
        {k: e[k] for k in
         ("timestamp", "protocol", "type", "compliant", "violations")}
        for e in verdict_events
    ]
    assert streamed == expected

    summary = next(data for name, data in events if name == "summary")
    batch_summary = ComplianceSummary.from_verdicts("meet", batch.verdicts)
    assert summary["volume"]["total"] == batch_summary.volume.total
    assert summary["volume"]["compliant"] == batch_summary.volume.compliant

    status, stats = _get(daemon, f"/sessions/{session_id}/stats")
    assert status == 200
    assert stats["closed"] is True
    assert stats["verdicts_ready"] == len(batch.verdicts)
    assert [s["name"] for s in stats["stages"]] == ["filter", "dpi", "check"]
    for stage in stats["stages"]:
        assert list(stage) == STATS_KEYS
    assert set(stats["queue"]) == {"puts", "drops", "blocked", "depth"}

    status, listed = _get(daemon, "/sessions")
    assert any(s["id"] == session_id for s in listed["sessions"])

    status, deleted = _delete(daemon, f"/sessions/{session_id}")
    assert status == 200
    assert deleted["deleted"] is True
    assert deleted["verdicts"] == len(batch.verdicts)

    status, payload = _get(daemon, "/healthz")
    assert status == 200 and payload["status"] == "ok"
