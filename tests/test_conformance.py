"""Golden conformance corpus: recording, loading, and differential checks.

The committed corpus under ``tests/golden/conformance`` is the contract:
every engine configuration must reproduce it bit-identically, and any
schema or content drift must fail with an actionable re-record hint.
"""

import json
import shutil

import pytest

from repro.apps import NetworkCondition
from repro.cli import main as cli_main
from repro.conformance import (
    ENGINE_SPECS,
    RERECORD_HINT,
    SCHEMA_VERSION,
    CorpusConfig,
    GoldenMismatchError,
    check_corpus,
    default_corpus_dir,
    load_cell,
    load_manifest,
)
from repro.conformance.golden import cell_records, corpus_cells
from repro.dpi import DpiEngine
from repro.dpi.engine import DEFAULT_CACHE_SIZE


@pytest.fixture(scope="module")
def corpus_dir():
    directory = default_corpus_dir()
    if not (directory / "manifest.json").exists():
        pytest.fail(f"committed conformance corpus missing from {directory} "
                    f"— {RERECORD_HINT}")
    return directory


@pytest.fixture(scope="module")
def corpus_report(corpus_dir):
    """One full differential check, shared by every test that reads it."""
    return check_corpus(corpus_dir)


class TestDifferentialCheck:
    def test_every_engine_config_matches_goldens(self, corpus_report):
        drifts = "\n".join(d.render() for d in corpus_report.drifts)
        assert corpus_report.ok, f"engine drift against golden corpus:\n{drifts}"

    def test_all_cells_and_engines_covered(self, corpus_report):
        assert corpus_report.cells_checked == 18
        assert corpus_report.engines == tuple(s.name for s in ENGINE_SPECS)
        assert {
            "sweep",
            "fastpath",
            "cached",
            "fastpath-cached-shared",
            "streaming",
            "sharded-streaming",
            "columnar",
        } == set(corpus_report.engines)


class TestSchemaStability:
    def test_manifest_records_current_schema_version(self, corpus_dir):
        manifest = load_manifest(corpus_dir)
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert len(manifest["cells"]) == 18

    def test_schema_version_drift_names_rerecord_command(self, corpus_dir, tmp_path):
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(GoldenMismatchError) as excinfo:
            load_manifest(tmp_path)
        assert RERECORD_HINT in str(excinfo.value)
        assert f"expects {SCHEMA_VERSION}" in str(excinfo.value)

    def test_corpus_hash_drift_names_rerecord_command(self, corpus_dir, tmp_path):
        name = "zoom__wifi_p2p"
        payload = json.loads((corpus_dir / f"{name}.json").read_text())
        payload["facts"]["volume"][0] += 1
        (tmp_path / f"{name}.json").write_text(json.dumps(payload))
        with pytest.raises(GoldenMismatchError) as excinfo:
            load_cell(tmp_path, name)
        message = str(excinfo.value)
        assert RERECORD_HINT in message
        assert "corpus hash drift" in message

    def test_missing_cell_file_names_rerecord_command(self, tmp_path):
        with pytest.raises(GoldenMismatchError) as excinfo:
            load_cell(tmp_path, "zoom__wifi_p2p")
        assert RERECORD_HINT in str(excinfo.value)

    def test_manifest_digest_mismatch_is_reported_as_drift(self, corpus_dir, tmp_path):
        name = "zoom__wifi_p2p"
        shutil.copy(corpus_dir / f"{name}.json", tmp_path / f"{name}.json")
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        manifest["cells"] = {name: "0" * 32}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        report = check_corpus(tmp_path)
        assert not report.ok
        assert report.cells_checked == 0
        assert report.drifts[0].kind == "manifest-digest"
        assert RERECORD_HINT in report.drifts[0].detail


class TestDpiStatsInvariants:
    def test_counters_consistent_across_all_cells(self, corpus_dir):
        """Cache + fast path never lose or double-count a datagram.

        One shared fastpath+cached engine (the production ``run_matrix``
        shape) replays all 18 cells; per-cell counter deltas must satisfy
        every internal identity — hits + misses == lookups <= datagrams,
        and cache hits + fast-path hits + sweeps covering every datagram.
        """
        manifest = load_manifest(corpus_dir)
        config = CorpusConfig.from_dict(manifest["config"])
        cells = corpus_cells(manifest)
        assert len(cells) == 18
        engine = DpiEngine(
            max_offset=config.max_offset,
            cache_size=DEFAULT_CACHE_SIZE,
            fastpath=True,
        )
        for app, network in cells:
            before = engine.stats.copy()
            dpi = engine.analyze_records(cell_records(app, network, config))
            delta = engine.stats.since(before)
            assert delta.invariant_violations() == [], (app, network)
            assert delta.datagrams == len(dpi.analyses)
            assert delta.cache_hits + delta.cache_misses == delta.cache_lookups
            assert delta.cache_lookups <= delta.datagrams
            covered = delta.cache_hits + delta.fastpath_hits + delta.sweeps
            assert covered >= delta.datagrams
            if delta.fastpath_redos == 0:
                assert covered == delta.datagrams
            assert delta.sweeps >= delta.fastpath_fallbacks
        assert engine.stats.invariant_violations() == []


class TestConformanceCli:
    NETWORK = NetworkCondition.WIFI_P2P.value

    def _record(self, tmp_path):
        return cli_main([
            "conformance", "record", "--dir", str(tmp_path),
            "--duration", "4", "--scale", "0.2",
            "--apps", "zoom", "--networks", self.NETWORK,
        ])

    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / f"zoom__{self.NETWORK}.json").exists()
        assert cli_main(["conformance", "check", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "OK: all engine configurations match the golden corpus" in out

    def test_check_fails_and_writes_report_on_tampered_cell(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        cell_path = tmp_path / f"zoom__{self.NETWORK}.json"
        payload = json.loads(cell_path.read_text())
        payload["facts"]["volume"][0] += 1
        cell_path.write_text(json.dumps(payload))
        report_path = tmp_path / "drift.txt"
        code = cli_main([
            "conformance", "check", "--dir", str(tmp_path),
            "--report-out", str(report_path),
        ])
        capsys.readouterr()
        assert code == 1
        assert "DRIFT" in report_path.read_text()

    def test_fuzz_smoke_without_corpus(self, capsys):
        code = cli_main([
            "conformance", "fuzz", "--iterations", "60", "--seed", "9",
            "--no-corpus",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK: every mutation was attributed" in out
