"""Tests for stage-one candidate matchers."""

from repro.dpi.candidates import (
    quic_candidates,
    rtcp_candidates,
    rtp_candidates,
    stun_candidates,
)
from repro.dpi.messages import Protocol
from repro.protocols.rtcp.packets import ReceiverReport, SdesChunk, SdesItem, SdesPacket
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import ChannelData, StunMessage


def stun_bytes(msg_type=0x0001, attrs=(), classic=False, txid=None):
    if txid is None:
        txid = bytes(16 if classic else 12)
    return StunMessage(msg_type=msg_type, transaction_id=txid,
                       attributes=list(attrs), classic=classic).build()


def rtp_bytes(**overrides):
    defaults = dict(payload_type=96, sequence_number=10, timestamp=20,
                    ssrc=0xABCD, payload=b"media-payload")
    defaults.update(overrides)
    return RtpPacket(**defaults).build()


class TestStunCandidates:
    def test_modern_at_offset_zero(self):
        found = stun_candidates(stun_bytes(), max_offset=200)
        assert any(c.offset == 0 and not c.classic_stun for c in found)

    def test_modern_behind_proprietary_header(self):
        payload = b"\xAA" * 24 + stun_bytes()
        found = stun_candidates(payload, max_offset=200)
        assert any(c.offset == 24 for c in found)

    def test_offset_limit_respected(self):
        payload = b"\xAA" * 50 + stun_bytes()
        assert not stun_candidates(payload, max_offset=20)
        assert stun_candidates(payload, max_offset=60)

    def test_classic_only_at_offset_zero(self):
        classic = stun_bytes(classic=True)
        assert any(c.classic_stun for c in stun_candidates(classic, 200))
        shifted = b"\xAA" * 8 + classic
        assert not any(c.classic_stun for c in stun_candidates(shifted, 200))

    def test_classic_requires_exact_fit(self):
        classic = stun_bytes(classic=True) + b"\x00" * 4
        assert not any(c.classic_stun for c in stun_candidates(classic, 200))

    def test_channeldata_valid_range(self):
        frame = ChannelData(channel=0x4ABC, data=b"x" * 10).build()
        found = stun_candidates(frame, 200)
        assert any(isinstance(c.message, ChannelData) for c in found)

    def test_channeldata_0x6000_not_matched(self):
        # FaceTime's proprietary 0x6000 prefix must NOT parse as ChannelData.
        frame = b"\x60\x00\x00\x0ahelloworld"
        assert not any(
            isinstance(c.message, ChannelData) for c in stun_candidates(frame, 200)
        )

    def test_channeldata_padding_becomes_trailer(self):
        frame = ChannelData(channel=0x4001, data=b"abc").build() + b"\x00\x00"
        found = [c for c in stun_candidates(frame, 200)
                 if isinstance(c.message, ChannelData)]
        assert found and found[0].trailer == b"\x00\x00"

    def test_channeldata_excessive_slack_rejected(self):
        frame = ChannelData(channel=0x4001, data=b"abc").build() + b"\x00" * 8
        assert not any(
            isinstance(c.message, ChannelData) for c in stun_candidates(frame, 200)
        )

    def test_random_bytes_no_modern_match(self):
        import random
        rng = random.Random(1)
        for _ in range(50):
            payload = bytes(rng.getrandbits(8) for _ in range(120))
            assert not any(
                not c.classic_stun and not isinstance(c.message, ChannelData)
                for c in stun_candidates(payload, 200)
            )


class TestRtpCandidates:
    def test_at_offset_zero(self):
        found = rtp_candidates(rtp_bytes(), 200)
        assert found[0].offset == 0
        assert found[0].rtp_ssrc == 0xABCD
        assert found[0].rtp_seq == 10

    def test_behind_header(self):
        payload = b"\x00" * 19 + rtp_bytes()
        found = rtp_candidates(payload, 200)
        assert any(c.offset == 19 for c in found)

    def test_offset_limit(self):
        payload = b"\x00" * 30 + rtp_bytes()
        assert not any(c.offset == 30 for c in rtp_candidates(payload, 10))

    def test_lazy_parse(self):
        found = rtp_candidates(rtp_bytes(), 200)
        assert found[0].message is None  # parsed only on acceptance


class TestRtcpCandidates:
    def test_compound_split(self):
        raw = (ReceiverReport(ssrc=1).to_packet().build()
               + SdesPacket(chunks=[SdesChunk(1, [SdesItem(1, b"c")])]).to_packet().build())
        found = rtcp_candidates(raw, 200)
        types = sorted(c.message.packet_type for c in found if c.offset in (0, 8))
        assert 201 in types and 202 in types

    def test_anchor_propagates(self):
        raw = (ReceiverReport(ssrc=1).to_packet().build()
               + SdesPacket(chunks=[SdesChunk(1, [SdesItem(1, b"c")])]).to_packet().build())
        found = rtcp_candidates(raw, 200)
        zero_anchor = [c for c in found if c.anchor == 0]
        assert len(zero_anchor) >= 2

    def test_trailer_attached_to_last(self):
        raw = ReceiverReport(ssrc=1).to_packet().build() + b"\x00\x07\x80"
        found = [c for c in rtcp_candidates(raw, 200) if c.offset == 0]
        assert found[0].trailer == b"\x00\x07\x80"

    def test_excessive_leftover_rejected(self):
        raw = ReceiverReport(ssrc=1).to_packet().build() + bytes(30)
        assert not any(c.offset == 0 for c in rtcp_candidates(raw, 200))


class TestQuicCandidates:
    def _initial(self):
        import struct
        from repro.protocols.quic.varint import encode_varint
        out = bytes([0xC1]) + struct.pack("!I", 1)
        out += bytes([8]) + b"\x01" * 8 + bytes([8]) + b"\x02" * 8
        out += encode_varint(0) + encode_varint(30) + bytes(30)
        return out

    def test_long_header_found(self):
        found = quic_candidates(self._initial(), 200)
        assert found and found[0].message.is_long

    def test_coalesced_found(self):
        raw = self._initial() + self._initial()
        found = quic_candidates(raw, 200)
        assert len([c for c in found if c.message.is_long]) == 2

    def test_short_header_tentative_at_zero(self):
        raw = bytes([0x41]) + b"\x01" * 8 + bytes(30)
        found = quic_candidates(raw, 200)
        assert any(not c.message.is_long for c in found)

    def test_unknown_version_ignored(self):
        raw = bytearray(self._initial())
        raw[1:5] = (0xDEAD).to_bytes(4, "big")
        assert not any(c.message.is_long for c in quic_candidates(bytes(raw), 200))
