"""Property tests for the network-impairment layer (:mod:`repro.netem`).

Two families of invariants, driven by hypothesis-generated profiles:

- **Determinism**: the impairer is a pure function of (profile, seed,
  label, input) — applying it twice yields byte-identical streams, and
  a different seed or label draws an independent one.
- **Engine parity**: whatever a generated profile does to the record
  stream, every execution shape — plain sweep, flow-sticky fast path,
  streaming pipeline, flow-sharded streaming, and the columnar backend
  in both its vectorized and pure-Python modes — produces bit-identical
  verdicts, datagram classes, and metrics to the reference scalar sweep.

The generated profiles deliberately exceed the named presets (loss up to
30%, heavy duplication, arbitrary rebind fractions) so parity is not an
artifact of the shipped configurations.
"""

from __future__ import annotations

from functools import lru_cache
from unittest import mock

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.conformance.golden import build_facts, facts_digest
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.netem import (
    GilbertElliott,
    Impairer,
    ImpairmentProfile,
    NatRebind,
    PROFILES,
    build_impairer,
)

APP = "zoom"
NETWORK = NetworkCondition.WIFI_P2P
MAX_OFFSET = 200


@lru_cache(maxsize=1)
def base_records():
    """One small clean cell, simulated once for the whole module."""
    config = CallConfig(
        network=NETWORK, seed=3, call_duration=5.0, media_scale=0.25
    )
    return tuple(get_simulator(APP).simulate(config).records)


def probabilities(upper):
    return st.floats(min_value=0.0, max_value=upper, allow_nan=False)


burst_chains = st.builds(
    GilbertElliott,
    p_enter=st.floats(min_value=0.001, max_value=0.2),
    p_exit=st.floats(min_value=0.05, max_value=0.9),
    loss_good=probabilities(0.05),
    loss_bad=st.floats(min_value=0.1, max_value=0.9),
)

rebinds = st.builds(
    NatRebind,
    at_fraction=st.floats(min_value=0.2, max_value=0.8),
    collide=st.booleans(),
)

profiles = st.builds(
    ImpairmentProfile,
    name=st.just("hyp"),
    loss_rate=probabilities(0.3),
    burst=st.none() | burst_chains,
    reorder_rate=probabilities(0.3),
    reorder_delay=st.floats(min_value=0.005, max_value=0.05),
    duplicate_rate=probabilities(0.2),
    rebind=st.none() | rebinds,
    udp_blocked=st.booleans(),
)


def impaired(profile, seed=0, label="prop"):
    return Impairer(profile, seed=seed, label=label).apply(base_records())


class TestDeterminism:
    @settings(max_examples=25)
    @given(profile=profiles, seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_same_sequence(self, profile, seed):
        first = impaired(profile, seed=seed)
        second = impaired(profile, seed=seed)
        assert first == second

    @settings(max_examples=25)
    @given(profile=profiles)
    def test_input_not_mutated_and_output_sorted(self, profile):
        original = base_records()
        snapshot = tuple(original)
        out = Impairer(profile, seed=7, label="prop").apply(original)
        assert base_records() == snapshot
        assert all(
            a.timestamp <= b.timestamp for a, b in zip(out, out[1:])
        )

    @settings(max_examples=10)
    @given(profile=profiles)
    def test_distinct_labels_draw_independent_streams(self, profile):
        # Lossless noop-like draws can coincide; only require that the
        # label changes the stream when the profile actually randomizes.
        if profile.is_noop:
            return
        a = impaired(profile, seed=1, label="cell-a")
        b = impaired(profile, seed=1, label="cell-b")
        assert a == impaired(profile, seed=1, label="cell-a")
        assert b == impaired(profile, seed=1, label="cell-b")

    def test_noop_profile_returns_equal_records(self):
        out = Impairer(PROFILES["none"], seed=0).apply(base_records())
        assert out == list(base_records())

    def test_build_impairer_noop_fast_path(self):
        assert build_impairer("none", 0, "x") is None
        assert build_impairer("lossy", 0, "x") is not None


def _facts_digest(dpi, verdicts):
    facts = build_facts(APP, NETWORK, dpi, verdicts)
    facts.pop("dpi_stats")  # counters legitimately differ across shapes
    return facts_digest(facts)


def _reference_digest(records):
    engine = DpiEngine(max_offset=MAX_OFFSET, cache_size=0, fastpath=False)
    dpi = engine.analyze_records(records)
    verdicts = ComplianceChecker().check(dpi.messages())
    return _facts_digest(dpi, verdicts)


def _shape_digests(records):
    """Digest of every non-reference execution shape over *records*."""
    from functools import partial

    from repro.pipeline import run_streaming, run_streaming_sharded

    checker = ComplianceChecker()
    digests = {}

    engine = DpiEngine(max_offset=MAX_OFFSET, fastpath=True)
    dpi = engine.analyze_records(records)
    digests["fastpath"] = _facts_digest(dpi, checker.check(dpi.messages()))

    engine = DpiEngine(max_offset=MAX_OFFSET, backend="columnar")
    dpi = engine.analyze_records(records)
    digests["columnar"] = _facts_digest(dpi, checker.check(dpi.messages()))

    dpi, verdicts, _stats = run_streaming(
        records, DpiEngine(max_offset=MAX_OFFSET), ComplianceChecker()
    )
    digests["streaming"] = _facts_digest(dpi, verdicts)

    dpi, verdicts, _stats = run_streaming_sharded(
        records,
        engine_factory=partial(DpiEngine, max_offset=MAX_OFFSET),
        shards=2,
        workers=0,
    )
    digests["sharded"] = _facts_digest(dpi, verdicts)
    return digests


class TestEngineParity:
    @settings(max_examples=8)
    @given(profile=profiles, seed=st.integers(min_value=0, max_value=999))
    def test_all_shapes_match_scalar_sweep(self, profile, seed):
        records = impaired(profile, seed=seed)
        want = _reference_digest(records)
        for shape, digest in _shape_digests(records).items():
            assert digest == want, f"{shape} diverged from scalar sweep"

    @settings(max_examples=5)
    @given(profile=profiles, seed=st.integers(min_value=0, max_value=999))
    def test_columnar_pure_python_matches_vectorized(self, profile, seed):
        records = impaired(profile, seed=seed)
        vector_engine = DpiEngine(max_offset=MAX_OFFSET, backend="columnar")
        dpi = vector_engine.analyze_records(records)
        want = _facts_digest(dpi, ComplianceChecker().check(dpi.messages()))
        with mock.patch("repro.dpi.columnar._np", None):
            pure_engine = DpiEngine(max_offset=MAX_OFFSET, backend="columnar")
            assert not pure_engine._columnar.vectorized
            dpi = pure_engine.analyze_records(records)
            got = _facts_digest(dpi, ComplianceChecker().check(dpi.messages()))
        assert got == want

    @pytest.mark.parametrize("name", sorted(set(PROFILES) - {"none"}))
    def test_named_profiles_parity(self, name):
        records = Impairer(PROFILES[name], seed=11, label="named").apply(
            base_records()
        )
        want = _reference_digest(records)
        for shape, digest in _shape_digests(records).items():
            assert digest == want, f"{shape} diverged under profile {name}"
