"""Columnar batch DPI backend: bit-exact parity with the scalar sweep.

The columnar scanner's whole contract is that its candidate lists are
bit-identical to the scalar matchers for every payload — golden traffic,
adversarial edge cases, any batch split — on both the numpy and the
pure-Python path.  These tests pin that contract, plus the pieces riding
along: engine-level backend parity (verdicts *and* DpiStats), the
digest-once CandidateCache batch API, and the CLI flag.
"""

from functools import partial

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import HAVE_NUMPY, ColumnarScanner, DpiEngine
from repro.dpi.engine import CandidateCache
from repro.dpi.messages import Protocol
from repro.filtering import TwoStageFilter

#: Both scanner paths where available; numpy-less installs still run the
#: mandatory pure-Python path.
MODES = [False] + ([True] if HAVE_NUMPY else [])
MODE_IDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

#: Bytes that start (or sit inside) real anchors: RTP/RTCP version bytes,
#: RTCP packet types, the STUN magic cookie, QUIC long/short first bytes.
_ANCHOR_ALPHABET = (
    b"\x80\x81\x90\xb5\xc8\xc9\xca\xcb\xcc\xcd"
    b"\x21\x12\xa4\x42\x40\x4f\x42\xc0\xff\x00\x01\x02"
)

_payloads = st.one_of(
    st.binary(max_size=8),  # empty / 1-byte / truncated headers
    st.binary(max_size=240),
    # anchor-byte spam: every position looks like a match start
    st.integers(min_value=0, max_value=200).flatmap(
        lambda n: st.lists(
            st.sampled_from(_ANCHOR_ALPHABET), min_size=n, max_size=n
        ).map(bytes)
    ),
    # a STUN cookie planted at an arbitrary depth
    st.tuples(st.binary(max_size=48), st.binary(max_size=48)).map(
        lambda t: t[0] + b"\x21\x12\xa4\x42" + t[1]
    ),
)


@pytest.fixture(scope="module", params=MODES, ids=MODE_IDS)
def scanner(request):
    return ColumnarScanner(max_offset=200, use_numpy=request.param)


@pytest.fixture(scope="module")
def kept_records():
    trace = get_simulator("zoom").simulate(
        CallConfig(network=NetworkCondition.WIFI_RELAY, seed=1,
                   call_duration=6.0, media_scale=0.3)
    )
    return TwoStageFilter(trace.window).apply(trace.records).kept_records


class TestScannerParity:
    @given(batch=st.lists(_payloads, max_size=24))
    def test_scan_batch_matches_scalar(self, scanner, batch):
        results = scanner.scan_batch(batch)
        assert len(results) == len(batch)
        for payload, got in zip(batch, results):
            assert got == scanner.scan_payload(payload)

    @given(batch=st.lists(_payloads, min_size=1, max_size=16),
           split=st.integers(min_value=0, max_value=16))
    def test_batch_split_invariance(self, scanner, batch, split):
        split = min(split, len(batch))
        whole = scanner.scan_batch(batch)
        parts = scanner.scan_batch(batch[:split]) + scanner.scan_batch(
            batch[split:]
        )
        assert whole == parts

    def test_edge_payloads(self, scanner):
        cookie = b"\x21\x12\xa4\x42"
        edges = [
            b"",
            b"\x80",
            b"\x80" * 300,            # RTP anchor spam past max_offset
            b"\xc8" * 300,            # RTCP anchor spam
            b"\x40" * 30,             # QUIC short-header / ChannelData range
            cookie,                   # cookie with no room for a header
            b"\x00" * 4 + cookie,     # cookie exactly at the modern anchor
            b"\x00" * 204 + cookie + b"\x00" * 40,  # cookie past max_offset
            b"\x00\x01\x00\x00" + cookie + b"\x00" * 12,  # classic+modern
            b"\x80\xc8\x00\x01" + b"\x00" * 8,  # RTCP inside an RTP start
            bytes(range(256)),
        ]
        # One batch: exercises the vector path's shared anchor pass.
        for got, payload in zip(scanner.scan_batch(edges), edges):
            assert got == scanner.scan_payload(payload)

    def test_seam_artifacts_filtered(self, scanner):
        # The joined buffer contains a cookie and a QUIC anchor straddling
        # the seam between the two payloads; neither may produce a flag.
        left = b"\x00" * 8 + b"\x21\x12"
        right = b"\xa4\x42" + b"\x00" * 8
        results = scanner.scan_batch([left, right])
        assert results[0] == scanner.scan_payload(left)
        assert results[1] == scanner.scan_payload(right)

    def test_non_bytes_payload_falls_back(self, scanner):
        before = scanner.stats.fallbacks
        results = scanner.scan_batch([b"\x80" * 16, memoryview(b"\x80" * 16)])
        assert results[0] == scanner.scan_payload(b"\x80" * 16)
        assert results[1] is None
        assert scanner.stats.fallbacks == before + 1
        assert scanner.stats.fallback_rate > 0.0

    def test_protocol_subset_and_order(self):
        # A scanner restricted to a protocol subset (and a non-default
        # order) must still match its own scalar oracle.
        payload = b"\x00\x01\x00\x00\x21\x12\xa4\x42" + b"\x00" * 12
        for protocols in (
            (Protocol.RTP,),
            (Protocol.QUIC, Protocol.RTP),
            (Protocol.RTCP, Protocol.STUN_TURN),
        ):
            for mode in MODES:
                scanner = ColumnarScanner(
                    200, protocols=protocols, use_numpy=mode
                )
                batch = [payload, b"\x80" * 40, b"", b"\xc8\x00\x00\x01"]
                for got, p in zip(scanner.scan_batch(batch), batch):
                    assert got == scanner.scan_payload(p)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ColumnarScanner(-1)
        with pytest.raises(ValueError):
            ColumnarScanner(200, batch_size=0)
        if not HAVE_NUMPY:
            with pytest.raises(RuntimeError):
                ColumnarScanner(200, use_numpy=True)

    def test_stats_counters(self, scanner):
        fresh = ColumnarScanner(200, use_numpy=scanner.vectorized)
        fresh.scan_batch([b"\x80" * 16] * 8)
        fresh.scan_batch([])
        assert fresh.stats.batches == 2
        assert fresh.stats.payloads == 8
        assert fresh.stats.fallbacks == 0
        merged = ColumnarScanner(200).stats
        merged.merge(fresh.stats)
        assert merged.batches == 2 and merged.payloads == 8
        assert set(fresh.stats.as_dict()) == {
            "batches", "payloads", "fallbacks", "vector_errors",
            "fallback_rate",
        }


class TestEngineBackendParity:
    @pytest.mark.parametrize("fastpath", [False, True])
    @pytest.mark.parametrize("cache_size", [0, 4096])
    def test_backend_bit_identical(self, kept_records, fastpath, cache_size):
        scalar = DpiEngine(fastpath=fastpath, cache_size=cache_size)
        columnar = DpiEngine(
            fastpath=fastpath, cache_size=cache_size, backend="columnar"
        )
        a = scalar.analyze_records(kept_records)
        b = columnar.analyze_records(kept_records)
        assert a.analyses == b.analyses
        # DpiStats — sweeps, matcher calls, cache and fast-path counters —
        # must match exactly, not just the verdicts.
        assert a.stats.as_dict() == b.stats.as_dict()
        assert columnar.columnar_stats.fallbacks == 0

    def test_streaming_session_parity(self, kept_records):
        scalar = DpiEngine()
        columnar = DpiEngine(backend="columnar")
        batch = scalar.analyze_records(kept_records)
        session = columnar.stream_session()
        session.feed_many(kept_records)
        streamed = session.result()
        assert batch.analyses == streamed.analyses
        assert batch.stats.as_dict() == streamed.stats.as_dict()

    def test_backend_property_and_validation(self):
        assert DpiEngine().backend == "scalar"
        assert DpiEngine().columnar_stats is None
        engine = DpiEngine(backend="columnar")
        assert engine.backend == "columnar"
        assert engine.columnar_stats is not None
        with pytest.raises(ValueError):
            DpiEngine(backend="simd")


class TestCandidateCacheBatchApi:
    def test_digest_many_matches_scalar_key(self):
        payloads = [b"", b"a", b"\x80" * 40, b"a"]
        assert CandidateCache.digest_many(payloads) == [
            CandidateCache._key(p) for p in payloads
        ]

    def test_batch_api_equivalent_to_scalar(self):
        # Same op sequence through the payload API and the keyed batch
        # API: identical hits, misses, contents, and eviction order.
        scanner = ColumnarScanner(200, use_numpy=False)
        payloads = [bytes([i]) * (i + 1) for i in range(6)]
        ops = payloads + payloads[:3] + payloads[4:] + [b"\x80" * 20]
        a = CandidateCache(maxsize=4)
        b = CandidateCache(maxsize=4)
        for payload in ops:
            got_a = a.get(payload)
            if got_a is None:
                a.put(payload, scanner.scan_payload(payload))
        keys, results = b.get_many(ops)
        misses = [
            (key, scanner.scan_payload(payload))
            for key, payload, got in zip(keys, ops, results)
            if got is None
        ]
        b.put_many(misses)
        assert (a.hits, a.misses) == (b.hits, b.misses)
        assert list(a._store) == list(b._store)

    def test_get_many_hits_within_one_batch_after_put(self):
        cache = CandidateCache(maxsize=8)
        payload = b"\x80" * 16
        keys, results = cache.get_many([payload, payload])
        assert results == [None, None]
        assert keys[0] == keys[1]
        cache.put_many([(keys[0], [])])
        _, results = cache.get_many([payload])
        assert results == [[]]

    def test_contains_key_is_pure(self):
        cache = CandidateCache(maxsize=2)
        key_a, key_b = CandidateCache.digest_many([b"a", b"b"])
        cache.put_keyed(key_a, [])
        cache.put_keyed(key_b, [])
        hits, misses = cache.hits, cache.misses
        assert cache.contains_key(key_a)
        assert not cache.contains_key(b"\x00" * 20)
        # No counter moved and no LRU touch: "a" is still the eviction
        # victim even though it was just probed.
        assert (cache.hits, cache.misses) == (hits, misses)
        cache.put_keyed(CandidateCache._key(b"c"), [])
        assert not cache.contains_key(key_a)
        assert cache.contains_key(key_b)

    def test_zero_capacity_put_many_is_noop(self):
        cache = CandidateCache(maxsize=0)
        cache.put_many([(CandidateCache._key(b"a"), [])])
        assert not cache.contains_key(CandidateCache._key(b"a"))


class TestCliBackendFlag:
    def test_backend_flag_parses(self):
        from repro.cli import build_parser

        for command in ("run --app zoom", "matrix", "report",
                        "dpi-stats", "pipeline-stats", "pcap x.pcap"):
            argv = command.split()
            args = build_parser().parse_args(argv + ["--dpi-backend",
                                                     "columnar"])
            assert args.dpi_backend == "columnar"
            assert build_parser().parse_args(argv).dpi_backend == "scalar"

    def test_backend_flag_rejects_unknown(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--dpi-backend", "simd"])
