"""Streaming-vs-batch parity for the pipeline core.

The streaming refactor's contract is bit-identity: every layer's online
mode must produce exactly what the historical batch call produced.  These
tests pin that contract layer by layer (filter, DPI session, checker
stream, summary accumulator), end to end (``run_cell_pipeline`` vs a
hand-rolled batch run), and corpus-wide (the differ's streaming engine
spec against all 18 golden cells), plus the flush semantics and stage
instrumentation the streaming mode introduces.
"""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.conformance.differ import EngineSpec, check_corpus
from repro.conformance.golden import default_corpus_dir
from repro.core import ComplianceChecker, ComplianceSummary, StreamingSummary
from repro.dpi import DpiEngine
from repro.experiments.runner import ExperimentConfig, run_cell_pipeline
from repro.filtering import TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.pipeline import (
    CheckStage,
    DpiStage,
    FilterStage,
    Pipeline,
    Stage,
    StageStats,
    merge_stage_stats,
    ordered_verdicts,
    run_streaming,
)
from repro.streams.timeline import CallWindow

WINDOW = CallWindow(capture_start=0, call_start=60, call_end=360, capture_end=420)


def record(t, src=("10.0.0.9", 40000), dst=("93.184.216.34", 443),
           transport="UDP", payload=b"x"):
    return PacketRecord(
        timestamp=t, src_ip=src[0], src_port=src[1],
        dst_ip=dst[0], dst_port=dst[1], transport=transport, payload=payload,
    )


@pytest.fixture(scope="module")
def trace():
    simulator = get_simulator("meet")
    return simulator.simulate(
        CallConfig(
            network=NetworkCondition.CELLULAR,
            seed=3,
            call_duration=5.0,
            media_scale=0.3,
        )
    )


@pytest.fixture(scope="module")
def kept_records(trace):
    return TwoStageFilter(trace.window).apply(trace.records).kept_records


class TestOnlineFilterParity:
    def test_manual_online_equals_batch_apply(self, trace):
        batch = TwoStageFilter(trace.window).apply(trace.records)
        online = TwoStageFilter(trace.window).online()
        for rec in trace.records:
            online.observe(rec)
        streamed = online.finalize()
        assert streamed.raw == batch.raw
        assert streamed.stage1_removed == batch.stage1_removed
        assert streamed.stage2_removed == batch.stage2_removed
        assert streamed.kept == batch.kept
        assert [s.key for s in streamed.kept_streams] == [
            s.key for s in batch.kept_streams
        ]
        assert streamed.kept_records == batch.kept_records
        assert streamed.evaluation == batch.evaluation
        assert {name: [s.key for s in streams]
                for name, streams in streamed.removed_by.items()} == \
               {name: [s.key for s in streams]
                for name, streams in batch.removed_by.items()}

    def test_provisional_keep_revoked_at_flush(self):
        # An in-window stream is only provisionally kept: a post-window
        # record sharing its destination 3-tuple (NAT rebinding shape)
        # must still doom it when it arrives *after* the stream's packets.
        in_window = [
            record(100.0 + i, src=("10.0.0.9", 40002), dst=("17.5.7.9", 5223))
            for i in range(3)
        ]
        post_window = record(
            400.0, src=("10.0.0.9", 40003), dst=("17.5.7.9", 5223)
        )

        alone = TwoStageFilter(WINDOW).online()
        for rec in in_window:
            alone.observe(rec)
        assert len(alone.finalize().kept_streams) == 1

        revoked = TwoStageFilter(WINDOW).online()
        for rec in in_window:
            revoked.observe(rec)
        revoked.observe(post_window)
        result = revoked.finalize()
        assert [s.key for s in result.removed_by["3tuple"]] == [
            in_window[0].flow_key
        ]

    def test_observe_after_finalize_raises(self):
        online = TwoStageFilter(WINDOW).online()
        online.observe(record(100.0))
        online.finalize()
        with pytest.raises(RuntimeError):
            online.observe(record(101.0))
        with pytest.raises(RuntimeError):
            online.finalize()

    def test_low_memory_preserves_accounting(self, trace):
        batch = TwoStageFilter(trace.window).apply(trace.records)
        plain = TwoStageFilter(trace.window).online()
        low = TwoStageFilter(trace.window).online(low_memory=True)
        for rec in trace.records:
            plain.observe(rec)
            low.observe(rec)
        # Draining must actually release buffered packets...
        assert low.buffered_packets < plain.buffered_packets
        drained = low.finalize()
        # ...while every counter, the kept output, and the ground-truth
        # evaluation stay identical to the batch run.
        assert drained.raw == batch.raw
        assert drained.stage1_removed == batch.stage1_removed
        assert drained.stage2_removed == batch.stage2_removed
        assert drained.kept == batch.kept
        assert drained.kept_records == batch.kept_records
        assert drained.evaluation == batch.evaluation

    def test_kept_records_cached_and_sorted(self, trace):
        result = TwoStageFilter(trace.window).apply(trace.records)
        first = result.kept_records
        assert first is result.kept_records  # cached, not recomputed
        assert first == sorted(first, key=lambda r: r.timestamp)


class _Doubler(Stage):
    name = "double"

    def process(self, item):
        return (item, item)


class _HoldAll(Stage):
    name = "hold"

    def __init__(self):
        self._held = []

    def process(self, item):
        self._held.append(item)
        return ()

    def flush(self):
        held, self._held = self._held, []
        return held

    def buffered(self):
        return len(self._held)


class TestPipelineInstrumentation:
    def test_counts_and_peak_buffered(self):
        hold = _HoldAll()
        pipeline = Pipeline([_Doubler(), hold])
        out = pipeline.run([1, 2, 3])
        assert out == [1, 1, 2, 2, 3, 3]
        double_stats, hold_stats = pipeline.stats()
        assert (double_stats.records_in, double_stats.records_out) == (3, 6)
        assert (hold_stats.records_in, hold_stats.records_out) == (6, 6)
        assert hold_stats.peak_buffered == 6
        assert double_stats.wall_seconds >= 0.0

    def test_flush_cascades_downstream(self):
        # Items released by an upstream flush must still pass through the
        # stages after it.
        pipeline = Pipeline([_HoldAll(), _Doubler()])
        assert pipeline.feed("a") == []
        assert pipeline.flush() == ["a", "a"]
        assert pipeline.flush() == []  # idempotent

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_merge_stage_stats(self):
        into = {}
        merge_stage_stats(into, [StageStats("dpi", 10, 8, 0.5, 100)])
        merge_stage_stats(into, [StageStats("dpi", 5, 4, 0.25, 40)])
        merged = into["dpi"]
        assert (merged.records_in, merged.records_out) == (15, 12)
        assert merged.wall_seconds == pytest.approx(0.75)
        assert merged.peak_buffered == 100  # max, not sum


class TestDpiStreamSession:
    def test_session_result_equals_batch(self, kept_records):
        batch = DpiEngine(cache_size=0).analyze_records(kept_records)
        session = DpiEngine(cache_size=0).stream_session()
        for rec in kept_records:
            session.feed(rec)
        streamed = session.result()
        assert [a.classification for a in streamed.analyses] == [
            a.classification for a in batch.analyses
        ]
        assert [
            (m.timestamp, m.protocol, m.offset, m.length)
            for m in streamed.messages()
        ] == [
            (m.timestamp, m.protocol, m.offset, m.length)
            for m in batch.messages()
        ]
        assert streamed.stats.as_dict() == batch.stats.as_dict()

    def test_analyze_iter_matches_analyze_records(self, kept_records):
        batch = DpiEngine(cache_size=0).analyze_records(kept_records)
        iterated = list(DpiEngine(cache_size=0).analyze_iter(kept_records))
        assert [(a.record.timestamp, a.classification) for a in iterated] == [
            (a.record.timestamp, a.classification) for a in batch.analyses
        ]

    def test_finish_stream_releases_buffered_state(self, kept_records):
        udp = [r for r in kept_records if r.transport == "UDP"]
        first_key = udp[0].flow_key
        first_flow = [r for r in udp if r.flow_key == first_key]
        rest = [r for r in udp if r.flow_key != first_key]
        assert first_flow and rest

        session = DpiEngine(cache_size=0).stream_session()
        for rec in first_flow:
            session.feed(rec)
        high_water = session.buffered
        early = session.finish_stream(first_key)
        assert len(early) == len(first_flow)
        assert session.buffered == 0
        for rec in rest:
            session.feed(rec)
        late = session.flush()
        assert session.buffered == 0

        # Early release changes emission order, never per-stream verdicts:
        # streams are independent, so the union matches the batch run.
        batch = DpiEngine(cache_size=0).analyze_records(udp)
        combined = sorted(
            early + late, key=lambda a: a.record.timestamp
        )
        assert [(a.record.timestamp, a.classification) for a in combined] == [
            (a.record.timestamp, a.classification) for a in batch.analyses
        ]
        assert high_water == len(first_flow)

    def test_feed_after_flush_raises(self, kept_records):
        session = DpiEngine(cache_size=0).stream_session()
        session.feed(kept_records[0])
        session.flush()
        with pytest.raises(RuntimeError):
            session.feed(kept_records[0])


class TestCheckerStreamParity:
    @pytest.mark.parametrize("strict_compound", [False, True])
    def test_stream_matches_batch(self, kept_records, strict_compound):
        dpi = DpiEngine(cache_size=0).analyze_records(kept_records)
        checker = ComplianceChecker(strict_compound=strict_compound)
        batch = checker.check(dpi.messages())

        stream = checker.stream()
        indexed = []
        for analysis in dpi.analyses:
            indexed.extend(stream.feed(analysis.messages))
        assert stream.deferred > 0  # meet traces carry STUN traffic
        indexed.extend(stream.flush())
        streamed = ordered_verdicts(indexed)

        assert len(streamed) == len(batch)
        for got, want in zip(streamed, batch):
            assert got.message is want.message
            assert got.violation_keys() == want.violation_keys()

    def test_feed_after_flush_raises(self):
        stream = ComplianceChecker().stream()
        stream.flush()
        with pytest.raises(RuntimeError):
            stream.feed([])


class TestStreamingSummaryParity:
    def test_out_of_order_add_reproduces_batch_summary(self, kept_records):
        dpi = DpiEngine(cache_size=0).analyze_records(kept_records)
        verdicts = ComplianceChecker().check(dpi.messages())
        batch = ComplianceSummary.from_verdicts("meet", verdicts)

        accumulator = StreamingSummary("meet")
        # Deliver in a deliberately scrambled order, as the checker stream
        # does when STUN verdicts arrive at flush.
        indexed = list(enumerate(verdicts))
        scrambled = indexed[1::2] + indexed[0::2][::-1]
        for index, verdict in scrambled:
            accumulator.add(verdict, index=index)
        result = accumulator.result()

        assert result.volume == batch.volume
        assert result.volume_by_protocol == batch.volume_by_protocol
        assert list(result.volume_by_protocol) == list(batch.volume_by_protocol)
        assert list(result.types) == list(batch.types)  # insertion order too
        for key, entry in batch.types.items():
            got = result.types[key]
            assert (got.total, got.non_compliant) == (
                entry.total, entry.non_compliant
            )
            assert got.example_violations == entry.example_violations


class TestCellPipelineParity:
    CONFIG = ExperimentConfig(call_duration=5.0, media_scale=0.3, seed=3)

    def test_streaming_cell_equals_handrolled_batch(self, trace, kept_records):
        run = run_cell_pipeline(
            "meet",
            NetworkCondition.CELLULAR,
            self.CONFIG,
            engine=DpiEngine(cache_size=0),
            checker=ComplianceChecker(),
        )
        batch_dpi = DpiEngine(cache_size=0).analyze_records(kept_records)
        batch_verdicts = ComplianceChecker().check(batch_dpi.messages())

        assert run.filter_result.kept_records == kept_records
        assert [a.classification for a in run.dpi.analyses] == [
            a.classification for a in batch_dpi.analyses
        ]
        assert run.dpi.stats.as_dict() == batch_dpi.stats.as_dict()
        assert [v.violation_keys() for v in run.verdicts] == [
            v.violation_keys() for v in batch_verdicts
        ]

    def test_stage_stats_shape(self):
        run = run_cell_pipeline(
            "meet", NetworkCondition.CELLULAR, self.CONFIG
        )
        assert list(run.stage_stats) == ["filter", "dpi", "check"]
        filter_stats = run.stage_stats["filter"]
        assert filter_stats.records_in > 0
        # The filter withholds everything until flush, so its high-water
        # mark is the whole capture...
        assert filter_stats.peak_buffered == filter_stats.records_in
        assert filter_stats.records_out == len(
            run.filter_result.kept_records
        )
        # ...and the checker's buffer only ever holds deferred STUN.
        assert run.stage_stats["check"].records_out == len(run.verdicts)

    def test_run_streaming_helper(self, kept_records):
        dpi, verdicts, stats = run_streaming(
            kept_records, DpiEngine(cache_size=0), ComplianceChecker()
        )
        batch_dpi = DpiEngine(cache_size=0).analyze_records(kept_records)
        assert len(verdicts) == len(batch_dpi.messages())
        assert [s.name for s in stats] == ["dpi", "check"]


class TestDifferStreamingSpec:
    def test_streaming_sweep_matches_all_golden_cells(self):
        # The committed corpus ships with the repo; replay every cell
        # through a sweep-configured engine driven by the streaming core.
        spec = EngineSpec(
            "streaming-sweep", fastpath=False, cache_size=0, streaming=True
        )
        report = check_corpus(default_corpus_dir(), specs=(spec,))
        drifts = "\n".join(d.render() for d in report.drifts)
        assert report.ok, f"streaming engine drifted from goldens:\n{drifts}"
        assert report.cells_checked == 18
