"""Tests for the RTP, RTCP and QUIC compliance rules."""

import struct

import pytest

from repro.core.quic_rules import check_quic
from repro.core.rtcp_rules import check_rtcp, classify_trailer
from repro.core.rtp_rules import check_rtp
from repro.core.verdict import Criterion
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import PacketRecord
from repro.protocols.quic.header import parse_one
from repro.protocols.rtcp.packets import (
    AppPacket,
    FeedbackPacket,
    ReceiverReport,
    RtcpHeader,
    RtcpPacket,
    SdesChunk,
    SdesItem,
    SdesPacket,
    SenderReport,
    XrBlock,
    XrPacket,
)
from repro.protocols.rtp.extensions import (
    HeaderExtension,
    build_one_byte_extension,
    build_two_byte_extension,
)
from repro.protocols.rtp.header import RtpPacket


def wrap(message, protocol, raw=b"", trailer=b""):
    record = PacketRecord(
        timestamp=1.0, src_ip="1.1.1.1", src_port=1, dst_ip="2.2.2.2",
        dst_port=2, transport="UDP", payload=raw or bytes(64),
    )
    return ExtractedMessage(protocol=protocol, offset=0,
                            length=len(record.payload) - len(trailer),
                            message=message, record=record, trailer=trailer)


def rtp(**overrides):
    defaults = dict(payload_type=96, sequence_number=1, timestamp=2,
                    ssrc=3, payload=b"x")
    defaults.update(overrides)
    return RtpPacket(**defaults)


class TestRtpRules:
    def test_plain_packet_compliant(self):
        assert check_rtp(wrap(rtp(), Protocol.RTP)) == []

    def test_any_payload_type_passes_criterion1(self):
        for pt in (0, 13, 20, 35, 63, 95, 127):
            assert check_rtp(wrap(rtp(payload_type=pt), Protocol.RTP)) == []

    def test_one_byte_extension_compliant(self):
        packet = rtp(extension=build_one_byte_extension([(1, b"\x10")]))
        assert check_rtp(wrap(packet, Protocol.RTP)) == []

    def test_two_byte_extension_compliant(self):
        packet = rtp(extension=build_two_byte_extension([(9, b"ab")]))
        assert check_rtp(wrap(packet, Protocol.RTP)) == []

    @pytest.mark.parametrize("profile", [0x8001, 0x8500, 0x8D00, 0x0084, 0xFBD2])
    def test_undefined_profile_fails(self, profile):
        packet = rtp(extension=HeaderExtension(profile=profile, data=bytes(4)))
        violations = check_rtp(wrap(packet, Protocol.RTP))
        assert violations[0].code == "undefined-extension-profile"
        assert violations[0].criterion is Criterion.ATTRIBUTE_TYPES

    def test_id_zero_with_length_fails(self):
        data = bytes([0x03]) + b"abcd" + bytes(3)
        packet = rtp(extension=HeaderExtension(profile=0xBEDE, data=data))
        violations = check_rtp(wrap(packet, Protocol.RTP))
        assert violations[0].code == "id-zero-with-length"
        assert violations[0].criterion is Criterion.ATTRIBUTE_VALUES

    def test_truncated_element_fails(self):
        # Element declares 16 bytes but the block ends after 2.
        data = bytes([0x1F, 0xAA, 0xBB, 0x00])
        packet = rtp(extension=HeaderExtension(profile=0xBEDE, data=data))
        violations = check_rtp(wrap(packet, Protocol.RTP))
        assert violations[0].code == "truncated-extension-element"

    def test_invalid_padding_fails(self):
        packet = rtp(invalid_padding=True)
        violations = check_rtp(wrap(packet, Protocol.RTP))
        assert violations[0].code == "bad-padding"
        assert violations[0].criterion is Criterion.HEADER_FIELDS

    def test_non_sequential_collects_all(self):
        data = bytes([0x03]) + b"abcd" + bytes([0x1F, 0xAA, 0xBB]) + bytes(0)
        packet = rtp(invalid_padding=True,
                     extension=HeaderExtension(profile=0xBEDE, data=data))
        violations = check_rtp(wrap(packet, Protocol.RTP), sequential=False)
        assert len(violations) >= 2


class TestRtcpTrailerClassification:
    def test_none(self):
        assert classify_trailer(b"") == "none"

    def test_srtcp_tagged(self):
        trailer = ((1 << 31) | 5).to_bytes(4, "big") + bytes(10)
        assert classify_trailer(trailer) == "srtcp"

    def test_srtcp_tagless(self):
        trailer = ((1 << 31) | 5).to_bytes(4, "big")
        assert classify_trailer(trailer) == "srtcp-no-tag"

    def test_implausible_index_is_proprietary(self):
        trailer = (0x7FFFFFFF).to_bytes(4, "big")
        assert classify_trailer(trailer) == "proprietary"

    def test_discord_3_bytes(self):
        assert classify_trailer(b"\x00\x07\x80") == "proprietary"


class TestRtcpRules:
    def test_valid_sr_compliant(self):
        packet = SenderReport(ssrc=1, ntp_timestamp=2, rtp_timestamp=3,
                              packet_count=4, octet_count=5).to_packet()
        assert check_rtcp(wrap(packet, Protocol.RTCP)) == []

    def test_undefined_packet_type(self):
        packet = RtcpPacket(header=RtcpHeader(2, False, 0, 210, 1), body=bytes(4))
        violations = check_rtcp(wrap(packet, Protocol.RTCP))
        assert violations[0].criterion is Criterion.MESSAGE_TYPE

    def test_count_length_mismatch(self):
        packet = RtcpPacket(header=RtcpHeader(2, False, 3, 201, 1), body=bytes(4))
        violations = check_rtcp(wrap(packet, Protocol.RTCP))
        assert violations[0].code == "count-length-mismatch"
        assert violations[0].criterion is Criterion.HEADER_FIELDS

    def test_undefined_sdes_item(self):
        packet = SdesPacket(chunks=[SdesChunk(1, [SdesItem(9, b"zz")])]).to_packet()
        violations = check_rtcp(wrap(packet, Protocol.RTCP))
        assert violations[0].code == "undefined-sdes-item"
        assert violations[0].criterion is Criterion.ATTRIBUTE_TYPES

    def test_undefined_feedback_format(self):
        packet = FeedbackPacket(packet_type=205, fmt=9, sender_ssrc=1,
                                media_ssrc=2).to_packet()
        violations = check_rtcp(wrap(packet, Protocol.RTCP))
        assert violations[0].code == "undefined-feedback-format"

    def test_known_feedback_formats_pass(self):
        for packet_type, fmt in ((205, 1), (205, 15), (206, 1), (206, 15)):
            packet = FeedbackPacket(packet_type=packet_type, fmt=fmt,
                                    sender_ssrc=1, media_ssrc=2).to_packet()
            assert check_rtcp(wrap(packet, Protocol.RTCP)) == []

    def test_bad_app_name(self):
        packet = AppPacket(ssrc=1, name=b"\x00\x01\x02\x03").to_packet()
        violations = check_rtcp(wrap(packet, Protocol.RTCP))
        assert violations[0].code == "bad-app-name"

    def test_undefined_xr_block(self):
        packet = XrPacket(ssrc=1, blocks=[XrBlock(99, 0, bytes(4))]).to_packet()
        violations = check_rtcp(wrap(packet, Protocol.RTCP))
        assert violations[0].code == "undefined-xr-block"

    def test_srtcp_with_tag_compliant(self):
        packet = ReceiverReport(ssrc=1).to_packet()
        trailer = ((1 << 31) | 9).to_bytes(4, "big") + bytes(10)
        extracted = wrap(packet, Protocol.RTCP, trailer=trailer)
        assert check_rtcp(extracted) == []

    def test_srtcp_missing_tag_flagged(self):
        packet = ReceiverReport(ssrc=1).to_packet()
        trailer = ((1 << 31) | 9).to_bytes(4, "big")
        violations = check_rtcp(wrap(packet, Protocol.RTCP, trailer=trailer))
        assert violations[0].code == "srtcp-missing-auth-tag"
        assert violations[0].criterion is Criterion.SEMANTICS

    def test_proprietary_trailer_flagged(self):
        packet = ReceiverReport(ssrc=1).to_packet()
        violations = check_rtcp(wrap(packet, Protocol.RTCP, trailer=b"\x00\x01\x80"))
        assert violations[0].code == "undefined-trailing-bytes"

    def test_encrypted_body_skips_content_checks(self):
        # SRTCP-protected SDES body is random; must not be judged.
        header = RtcpHeader(2, False, 1, 202, 3)
        packet = RtcpPacket(header=header, body=b"\xff" * 12)
        trailer = ((1 << 31) | 2).to_bytes(4, "big") + bytes(10)
        assert check_rtcp(wrap(packet, Protocol.RTCP, trailer=trailer)) == []


class TestQuicRules:
    def _initial(self):
        from repro.protocols.quic.varint import encode_varint
        out = bytes([0xC1]) + struct.pack("!I", 1)
        out += bytes([8]) + b"\x01" * 8 + bytes([8]) + b"\x02" * 8
        out += encode_varint(0) + encode_varint(30) + bytes(30)
        return parse_one(out)

    def test_initial_compliant(self):
        assert check_quic(wrap(self._initial(), Protocol.QUIC)) == []

    def test_short_header_compliant(self):
        header = parse_one(bytes([0x41]) + b"\x01" * 8 + bytes(30), short_dcid_len=8)
        assert check_quic(wrap(header, Protocol.QUIC)) == []

    def test_version_negotiation_compliant(self):
        raw = bytes([0x80]) + struct.pack("!I", 0)
        raw += bytes([8]) + b"\x01" * 8 + bytes([8]) + b"\x02" * 8
        raw += struct.pack("!I", 1)
        assert check_quic(wrap(parse_one(raw), Protocol.QUIC)) == []
