"""Tests for deterministic RNG and hexdump helpers."""

from repro.utils.hexdump import hexdump
from repro.utils.rand import DeterministicRandom, derive


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(42)
        b = DeterministicRandom(42)
        assert [a.u32() for _ in range(10)] == [b.u32() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert DeterministicRandom(1).u64() != DeterministicRandom(2).u64()

    def test_child_streams_independent(self):
        root = DeterministicRandom("root")
        a = root.child("a")
        b = root.child("b")
        assert [a.u32() for _ in range(5)] != [b.u32() for _ in range(5)]

    def test_child_deterministic(self):
        assert (
            DeterministicRandom("x").child("y").u32()
            == DeterministicRandom("x").child("y").u32()
        )

    def test_rand_bytes_length(self):
        assert len(DeterministicRandom(0).rand_bytes(17)) == 17

    def test_transaction_id_is_12_bytes(self):
        assert len(DeterministicRandom(0).transaction_id()) == 12

    def test_jitter_within_bounds(self):
        rng = DeterministicRandom(0)
        for _ in range(100):
            value = rng.jitter(10.0, 0.1)
            assert 9.0 <= value <= 11.0

    def test_derive_is_stable(self):
        assert derive(7, "media").u32() == derive(7, "media").u32()
        assert derive(7, "media").u32() != derive(7, "rtcp").u32()


class TestHexdump:
    def test_empty(self):
        assert hexdump(b"") == ""

    def test_single_line(self):
        out = hexdump(b"STUN!")
        assert out.startswith("00000000")
        assert "|STUN!|" in out

    def test_nonprintable_replaced(self):
        out = hexdump(b"\x00\x01A")
        assert "|..A|" in out

    def test_multiline_offsets(self):
        out = hexdump(bytes(40))
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("00000010")

    def test_offset_parameter(self):
        out = hexdump(b"ab", offset=0x100)
        assert out.startswith("00000100")
