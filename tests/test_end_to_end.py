"""End-to-end tests asserting the paper's headline findings hold in shape.

These run the full pipeline per app (shared via the session cache) and check
the qualitative claims of §5: which protocols/applications are compliant,
the type-level table rows, and the orderings in Figures 4-5.
"""

import pytest

from repro.apps import APP_NAMES, NetworkCondition
from repro.core import ComplianceSummary
from repro.core.metrics import merge_type_entries


@pytest.fixture(scope="module")
def summaries(pipeline_cache):
    result = {}
    for app in APP_NAMES:
        merged = None
        for network in NetworkCondition:
            _trace, _filter, _dpi, verdicts = pipeline_cache(app, network)
            summary = ComplianceSummary.from_verdicts(app, verdicts)
            if merged is None:
                merged = summary
            else:
                from repro.experiments.runner import merge_summaries
                merged = merge_summaries(merged, summary)
        result[app] = merged
    return result


class TestPaperFindings:
    def test_no_app_fully_compliant(self, summaries):
        """Finding 2: no application follows every specification."""
        for app, summary in summaries.items():
            compliant, total = summary.type_ratio()
            assert compliant < total, app

    def test_quic_fully_compliant(self, summaries):
        """Q1: QUIC is 100% compliant (FaceTime only)."""
        quic = summaries["facetime"].volume_by_protocol.get("quic")
        assert quic is not None and quic.ratio == 1.0

    def test_protocol_volume_ordering(self, summaries):
        """Q1: RTP > RTCP > STUN by volume-compliance... with the caveat
        that STUN's exact rank depends on Meet's weight; at minimum RTP must
        beat RTCP and QUIC must beat everything."""
        totals = {}
        for summary in summaries.values():
            for protocol, volume in summary.volume_by_protocol.items():
                compliant, total = totals.get(protocol, (0, 0))
                totals[protocol] = (compliant + volume.compliant, total + volume.total)
        ratio = {p: c / t for p, (c, t) in totals.items() if t}
        assert ratio["quic"] == 1.0
        assert ratio["rtp"] > ratio["rtcp"]

    def test_facetime_least_compliant_by_volume(self, summaries):
        ratios = {app: s.volume.ratio for app, s in summaries.items()}
        assert min(ratios, key=ratios.get) == "facetime"
        assert ratios["facetime"] < 0.05

    def test_zoom_whatsapp_high_volume_compliance(self, summaries):
        assert summaries["zoom"].volume.ratio > 0.99
        assert summaries["whatsapp"].volume.ratio > 0.95

    def test_discord_all_types_non_compliant(self, summaries):
        """Q2: every Discord message type violates something."""
        compliant, total = summaries["discord"].type_ratio()
        assert compliant == 0
        assert total == 9

    def test_whatsapp_table3_row(self, summaries):
        summary = summaries["whatsapp"]
        assert summary.type_ratio("stun_turn") == (1, 10)
        assert summary.type_ratio("rtp") == (5, 5)
        assert summary.type_ratio("rtcp") == (4, 4)

    def test_messenger_table3_row(self, summaries):
        summary = summaries["messenger"]
        assert summary.type_ratio("stun_turn") == (11, 18)
        assert summary.type_ratio("rtp") == (5, 5)
        assert summary.type_ratio("rtcp") == (4, 4)

    def test_facetime_table3_row(self, summaries):
        summary = summaries["facetime"]
        assert summary.type_ratio("stun_turn") == (0, 4)
        assert summary.type_ratio("rtp") == (0, 5)
        assert summary.type_ratio("quic")[0] == summary.type_ratio("quic")[1] > 0

    def test_meet_table3_row(self, summaries):
        summary = summaries["meet"]
        assert summary.type_ratio("stun_turn") == (15, 16)
        rtp_compliant, rtp_total = summary.type_ratio("rtp")
        assert rtp_compliant == rtp_total > 0
        assert summary.type_ratio("rtcp") == (0, 7)

    def test_zoom_table3_row(self, summaries):
        summary = summaries["zoom"]
        assert summary.type_ratio("stun_turn") == (0, 2)
        rtp_compliant, rtp_total = summary.type_ratio("rtp")
        assert rtp_compliant == rtp_total > 0
        assert summary.type_ratio("rtcp") == (2, 2)

    def test_table5_rows(self, summaries):
        facetime_rtp = set(summaries["facetime"].observed_types("rtp"))
        assert facetime_rtp == {"100", "104", "108", "13", "20"}
        whatsapp_rtp = set(summaries["whatsapp"].observed_types("rtp"))
        assert whatsapp_rtp == {"97", "103", "105", "106", "120"}
        messenger_rtp = set(summaries["messenger"].observed_types("rtp"))
        assert messenger_rtp == {"97", "98", "101", "126", "127"}

    def test_table4_key_types(self, summaries):
        whatsapp = summaries["whatsapp"].observed_types("stun_turn")
        assert {"0x0800", "0x0801", "0x0802", "0x0803", "0x0804", "0x0805"} <= set(whatsapp)
        assert whatsapp["0x0001"].compliant
        meet = summaries["meet"].observed_types("stun_turn")
        assert meet["0x0200"].compliant and meet["0x0300"].compliant
        assert not meet["0x0003"].compliant
        assert meet["ChannelData"].compliant

    def test_table6_rows(self, summaries):
        meet_rtcp = summaries["meet"].observed_types("rtcp")
        assert set(meet_rtcp) == {"200", "201", "202", "204", "205", "206", "207"}
        assert all(not e.compliant for e in meet_rtcp.values())
        zoom_rtcp = summaries["zoom"].observed_types("rtcp")
        assert set(zoom_rtcp) == {"200", "202"}
        assert all(e.compliant for e in zoom_rtcp.values())

    def test_stun_least_compliant_by_types(self, summaries):
        """Figure 5: STUN/TURN and RTCP show the worst type-level compliance."""
        all_summaries = list(summaries.values())
        ratios = {}
        for protocol in ("stun_turn", "rtp", "rtcp"):
            compliant, total = merge_type_entries(all_summaries, protocol)
            ratios[protocol] = compliant / total
        assert ratios["rtp"] > ratios["stun_turn"]
        assert ratios["rtp"] > ratios["rtcp"]
