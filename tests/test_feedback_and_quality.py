"""Tests for the typed RTCP feedback codecs and RTP quality analytics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import analyze_rtp_quality
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.feedback import (
    FullIntraRequest,
    GenericNack,
    NackEntry,
    PictureLossIndication,
    Remb,
    TwccFeedbackHeader,
)
from repro.protocols.rtcp.packets import FeedbackPacket, RtcpParseError
from repro.protocols.rtp.header import RtpPacket


class TestGenericNack:
    def test_round_trip(self):
        nack = GenericNack(sender_ssrc=1, media_ssrc=2,
                           entries=[NackEntry(pid=100, blp=0b101)])
        parsed = GenericNack.from_feedback(nack.to_feedback())
        assert parsed == nack

    def test_lost_sequence_numbers(self):
        entry = NackEntry(pid=100, blp=0b101)
        assert entry.lost_sequence_numbers() == [100, 101, 103]

    def test_for_lost_packs_ranges(self):
        nack = GenericNack.for_lost(1, 2, [100, 101, 103, 300])
        assert len(nack.entries) == 2
        recovered = sorted(
            seq for entry in nack.entries
            for seq in entry.lost_sequence_numbers()
        )
        assert recovered == [100, 101, 103, 300]

    def test_for_lost_wraparound(self):
        nack = GenericNack.for_lost(1, 2, [65534, 65535])
        all_lost = [s for e in nack.entries for s in e.lost_sequence_numbers()]
        assert 65534 in all_lost and 65535 in all_lost

    def test_misaligned_fci_rejected(self):
        feedback = FeedbackPacket(packet_type=205, fmt=1, sender_ssrc=1,
                                  media_ssrc=2, fci=b"\x00" * 4)
        object.__setattr__(feedback, "fci", b"\x00" * 5)
        with pytest.raises(RtcpParseError):
            GenericNack.from_feedback(feedback)

    def test_wrong_fmt_rejected(self):
        feedback = FeedbackPacket(packet_type=205, fmt=15, sender_ssrc=1,
                                  media_ssrc=2)
        with pytest.raises(RtcpParseError):
            GenericNack.from_feedback(feedback)


class TestPli:
    def test_round_trip(self):
        pli = PictureLossIndication(sender_ssrc=7, media_ssrc=8)
        assert PictureLossIndication.from_feedback(pli.to_feedback()) == pli

    def test_nonempty_fci_rejected(self):
        feedback = FeedbackPacket(packet_type=206, fmt=1, sender_ssrc=1,
                                  media_ssrc=2, fci=b"\x00" * 4)
        with pytest.raises(RtcpParseError):
            PictureLossIndication.from_feedback(feedback)


class TestFir:
    def test_round_trip(self):
        fir = FullIntraRequest(sender_ssrc=1, media_ssrc=0,
                               entries=[(0xAA, 3), (0xBB, 4)])
        assert FullIntraRequest.from_feedback(fir.to_feedback()) == fir


class TestRemb:
    @pytest.mark.parametrize("bitrate", [1000, 250_000, 2_500_000, 40_000_000])
    def test_round_trip_bitrates(self, bitrate):
        remb = Remb(sender_ssrc=5, bitrate_bps=bitrate, media_ssrcs=[9, 10])
        parsed = Remb.from_feedback(remb.to_feedback())
        # Mantissa truncation loses at most the shifted-out low bits.
        assert parsed.bitrate_bps <= bitrate
        assert parsed.bitrate_bps > bitrate * 0.99
        assert parsed.media_ssrcs == [9, 10]

    def test_bad_magic_rejected(self):
        feedback = FeedbackPacket(packet_type=206, fmt=15, sender_ssrc=1,
                                  media_ssrc=0, fci=b"XEMB" + bytes(4))
        with pytest.raises(RtcpParseError):
            Remb.from_feedback(feedback)

    @given(st.integers(1, (1 << 18) - 1))
    def test_exact_for_small_bitrates(self, bitrate):
        remb = Remb(sender_ssrc=1, bitrate_bps=bitrate)
        assert Remb.from_feedback(remb.to_feedback()).bitrate_bps == bitrate


class TestTwcc:
    def test_round_trip_header(self):
        twcc = TwccFeedbackHeader(
            sender_ssrc=1, media_ssrc=2, base_sequence=500,
            packet_status_count=10, reference_time=7000, feedback_count=3,
            chunks_and_deltas=b"\x20\x0a\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a",
        )
        parsed = TwccFeedbackHeader.from_feedback(twcc.to_feedback())
        assert parsed.base_sequence == 500
        assert parsed.packet_status_count == 10
        assert parsed.reference_time == 7000
        assert parsed.feedback_count == 3


def rtp_message(seq, ts, arrival, ssrc=0xAB, payload=b"x" * 100):
    packet = RtpPacket(payload_type=96, sequence_number=seq, timestamp=ts,
                       ssrc=ssrc, payload=payload)
    raw = packet.build()
    record = PacketRecord(timestamp=arrival, src_ip="1.1.1.1", src_port=1,
                          dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                          payload=raw)
    return ExtractedMessage(protocol=Protocol.RTP, offset=0, length=len(raw),
                            message=packet, record=record)


class TestQuality:
    def test_clean_stream(self):
        messages = [
            rtp_message(seq=i, ts=i * 1800, arrival=i * 0.02)
            for i in range(50)
        ]
        quality = list(analyze_rtp_quality(messages).values())[0]
        assert quality.packets == 50
        assert quality.lost == 0
        assert quality.reordered == 0
        assert quality.loss_rate == 0.0
        assert quality.jitter_seconds < 1e-9  # perfectly paced

    def test_loss_detected(self):
        messages = [
            rtp_message(seq=i, ts=i * 1800, arrival=i * 0.02)
            for i in range(50) if i % 10 != 3  # drop 5 packets
        ]
        quality = list(analyze_rtp_quality(messages).values())[0]
        assert quality.lost == 5
        assert abs(quality.loss_rate - 5 / 50) < 1e-9

    def test_reordering_detected(self):
        order = [0, 1, 3, 2, 4, 6, 5, 7]
        messages = [
            rtp_message(seq=seq, ts=seq * 1800, arrival=i * 0.02)
            for i, seq in enumerate(order)
        ]
        quality = list(analyze_rtp_quality(messages).values())[0]
        assert quality.reordered == 2
        assert quality.lost == 0

    def test_duplicates_detected(self):
        messages = [rtp_message(seq=s, ts=s * 1800, arrival=i * 0.02)
                    for i, s in enumerate([0, 1, 1, 2])]
        quality = list(analyze_rtp_quality(messages).values())[0]
        assert quality.duplicate == 1
        assert quality.lost == 0

    def test_sequence_wraparound_handled(self):
        seqs = [65533, 65534, 65535, 0, 1, 2]
        messages = [rtp_message(seq=s, ts=i * 1800, arrival=i * 0.02)
                    for i, s in enumerate(seqs)]
        quality = list(analyze_rtp_quality(messages).values())[0]
        assert quality.lost == 0
        assert quality.expected == 6

    def test_jitter_from_bursty_arrival(self):
        messages = [
            rtp_message(seq=i, ts=i * 1800,
                        arrival=i * 0.02 + (0.01 if i % 2 else 0.0))
            for i in range(100)
        ]
        quality = list(analyze_rtp_quality(messages).values())[0]
        assert quality.jitter_seconds > 0.001

    def test_bitrate(self):
        messages = [
            rtp_message(seq=i, ts=i * 1800, arrival=i * 0.01,
                        payload=b"z" * 500)
            for i in range(101)
        ]
        quality = list(analyze_rtp_quality(messages).values())[0]
        # 100 intervals of 10 ms = 1 s window; ~101*500 bytes.
        assert 350_000 < quality.bitrate_bps < 450_000

    def test_streams_separated_by_ssrc(self):
        messages = [rtp_message(seq=i, ts=0, arrival=i * 0.02, ssrc=1)
                    for i in range(5)]
        messages += [rtp_message(seq=i, ts=0, arrival=i * 0.02, ssrc=2)
                     for i in range(7)]
        result = analyze_rtp_quality(messages)
        assert len(result) == 2
        packets = sorted(q.packets for q in result.values())
        assert packets == [5, 7]

    def test_end_to_end_on_simulated_traffic(self, pipeline_cache):
        from repro.apps import NetworkCondition
        _trace, _filter, dpi, _verdicts = pipeline_cache(
            "whatsapp", NetworkCondition.WIFI_P2P
        )
        result = analyze_rtp_quality(dpi.messages())
        assert result
        for quality in result.values():
            assert quality.loss_rate < 0.01  # the simulator does not drop
            assert quality.packet_rate > 1
