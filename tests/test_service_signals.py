"""Process-level graceful-shutdown tests (SIGTERM/SIGINT satellite).

A killed ``matrix`` run must not leave orphaned pool workers behind, and
a killed ``serve`` daemon must drain and exit cleanly.  Both tests drive
the real CLI in a subprocess so the installed signal handlers — not the
test process's — are what runs.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _children(pid):
    """Direct child PIDs of *pid* via /proc (Linux only)."""
    kids = []
    task_dir = f"/proc/{pid}/task"
    try:
        for tid in os.listdir(task_dir):
            try:
                with open(f"{task_dir}/{tid}/children") as fileobj:
                    kids.extend(int(p) for p in fileobj.read().split())
            except OSError:
                continue
    except OSError:
        pass
    return kids


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Reaped-but-listed race: a zombie is as good as gone.
    try:
        with open(f"/proc/{pid}/stat") as fileobj:
            return fileobj.read().rsplit(")", 1)[1].split()[0] != "Z"
    except OSError:
        return False


@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="needs /proc child enumeration"
)
def test_sigterm_matrix_leaves_no_orphan_workers():
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "matrix",
            "--workers", "2", "--duration", "4", "--scale", "0.3",
        ],
        cwd=REPO,
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        workers = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and proc.poll() is None:
            workers = _children(proc.pid)
            if len(workers) >= 2:
                break
            time.sleep(0.05)
        if proc.poll() is not None:
            pytest.skip("matrix finished before workers could be observed")
        assert len(workers) >= 2, "pool workers never appeared"

        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60.0)
        # The handler terminates the pool before re-raising, so the run
        # dies by SIGTERM and its workers die with it.
        assert proc.returncode == -signal.SIGTERM

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in workers):
                break
            time.sleep(0.1)
        leaked = [pid for pid in workers if _alive(pid)]
        assert not leaked, f"orphaned pool workers survived SIGTERM: {leaked}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


def test_serve_sigterm_drains_and_exits_cleanly():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        cwd=REPO,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on http://" in line, f"unexpected banner: {line!r}"
        base = line.strip().rsplit(" ", 1)[-1]

        with urllib.request.urlopen(base + "/healthz", timeout=10) as response:
            assert json.loads(response.read())["status"] == "ok"

        proc.send_signal(signal.SIGTERM)
        output = proc.stdout.read()
        proc.wait(timeout=30.0)
        assert proc.returncode == 0
        assert "shutting down: draining sessions" in output
        assert "shutdown complete" in output
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
