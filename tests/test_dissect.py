"""Tests for the text dissector and the dissect CLI command."""

import pytest

from repro.analysis.dissect import dissect_datagram, dissect_records
from repro.cli import main
from repro.dpi import DpiEngine
from repro.packets.packet import PacketRecord
from repro.protocols.rtp.extensions import build_one_byte_extension
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage


def analyzed(payload):
    record = PacketRecord(timestamp=1.5, src_ip="10.0.0.1", src_port=5000,
                          dst_ip="20.0.0.2", dst_port=3478, transport="UDP",
                          payload=payload)
    result = DpiEngine().analyze_records([record])
    return result.analyses[0]


class TestDissect:
    def test_stun_fields_shown(self):
        message = StunMessage(
            msg_type=0x0001, transaction_id=bytes(range(12)),
            attributes=[StunAttribute(0x8022, b"agent"),
                        StunAttribute(0x4003, b"\xff")],
        )
        text = dissect_datagram(analyzed(message.build()))
        assert "0x0001 (Binding Request)" in text
        assert "SOFTWARE" in text
        assert "0x4003 (UNDEFINED)" in text
        assert "000102030405060708090a0b" in text

    def test_proprietary_header_hexdumped(self):
        rtp_records = [
            PacketRecord(
                timestamp=float(i), src_ip="1.1.1.1", src_port=1,
                dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                payload=b"\xAB" * 16 + RtpPacket(
                    payload_type=96, sequence_number=i, timestamp=i * 160,
                    ssrc=0x42, payload=bytes(30)).build(),
            )
            for i in range(5)
        ]
        result = DpiEngine().analyze_records(rtp_records)
        text = dissect_datagram(result.analyses[0])
        assert "Proprietary header (16 bytes)" in text
        assert "ab ab ab" in text
        assert "offset 16" in text

    def test_rtp_extension_elements_shown(self):
        rtp_records = [
            PacketRecord(
                timestamp=float(i), src_ip="1.1.1.1", src_port=1,
                dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                payload=RtpPacket(
                    payload_type=96, sequence_number=i, timestamp=0,
                    ssrc=0x42, payload=b"x",
                    extension=build_one_byte_extension([(3, b"\x41\x42")]),
                ).build(),
            )
            for i in range(5)
        ]
        result = DpiEngine().analyze_records(rtp_records)
        text = dissect_datagram(result.analyses[0])
        assert "profile=0xBEDE" in text
        assert "element id=3" in text

    def test_unrecognized_payload(self):
        text = dissect_datagram(analyzed(b"\xde\xad\xbe\xef" * 10))
        assert "No recognizable protocol message" in text
        assert "fully_proprietary" in text

    def test_dissect_records_with_verdicts(self):
        message = StunMessage(msg_type=0x0801, transaction_id=bytes(12))
        record = PacketRecord(timestamp=1.0, src_ip="1.1.1.1", src_port=1,
                              dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                              payload=message.build())
        text = dissect_records([record])
        assert "NON-COMPLIANT" in text
        assert "undefined-message-type" in text

    def test_cli_dissect(self, tmp_path, capsys):
        from repro.packets.pcap import write_pcap
        message = StunMessage(msg_type=0x0001, transaction_id=bytes(12))
        record = PacketRecord(timestamp=1.0, src_ip="1.1.1.1", src_port=1,
                              dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                              payload=message.build())
        path = tmp_path / "one.pcap"
        write_pcap(path, [record])
        assert main(["dissect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Binding Request" in out
        assert "COMPLIANT" in out
