"""Tests for the experiment runner and table/figure generators."""

import pytest

from repro.apps import NetworkCondition
from repro.dpi.messages import DatagramClass
from repro.experiments import ExperimentConfig, run_experiment, run_matrix
from repro.experiments.figures import figure3, figure4, figure5, render_ratio_series
from repro.experiments.tables import (
    render_observed_types,
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

CONFIG = ExperimentConfig(call_duration=10.0, media_scale=0.25, seed=4)


@pytest.fixture(scope="module")
def small_matrix():
    return run_matrix(
        apps=("whatsapp", "discord"),
        networks=(NetworkCondition.WIFI_RELAY, NetworkCondition.CELLULAR),
        config=CONFIG,
    )


class TestRunExperiment:
    def test_aggregate_consistency(self):
        aggregate = run_experiment("zoom", NetworkCondition.WIFI_RELAY, CONFIG)
        assert aggregate.app == "zoom"
        assert aggregate.raw.udp_packets > 0
        assert aggregate.kept.udp_packets <= aggregate.raw.udp_packets
        assert aggregate.summary is not None
        assert sum(aggregate.class_counts.values()) == aggregate.kept.udp_packets

    def test_distribution_sums_to_one(self):
        aggregate = run_experiment("meet", NetworkCondition.WIFI_RELAY, CONFIG)
        shares = aggregate.message_distribution()
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_merge(self):
        a = run_experiment("discord", NetworkCondition.WIFI_RELAY, CONFIG)
        b = run_experiment("discord", NetworkCondition.CELLULAR, CONFIG)
        total_before = a.summary.volume.total + b.summary.volume.total
        a.merge(b)
        assert a.summary.volume.total == total_before

    def test_max_offset_respected(self):
        shallow = ExperimentConfig(call_duration=10.0, media_scale=0.25,
                                   seed=4, max_offset=0)
        aggregate = run_experiment("zoom", NetworkCondition.WIFI_RELAY, shallow)
        # Zoom hides everything behind 24+ byte headers; offset 0 finds none.
        assert aggregate.class_counts[DatagramClass.PROPRIETARY_HEADER] == 0


class TestTables:
    def test_table1_accounting(self, small_matrix):
        rows = table1(small_matrix)
        assert {row.app for row in rows} == {"whatsapp", "discord"}
        for row in rows:
            assert row.raw_udp[1] == (
                row.stage1_udp[1] + row.stage2_udp[1] + row.rtc_udp[1]
            )
        text = render_table1(rows)
        assert "whatsapp" in text and "Raw UDP" in text

    def test_table2_rows(self, small_matrix):
        distribution = table2(small_matrix)
        assert "rtp" in distribution["discord"]
        assert "stun_turn" not in distribution["discord"]  # Discord has none
        text = render_table2(distribution)
        assert "N/A" in text  # Discord's STUN column

    def test_table3_totals(self, small_matrix):
        table = table3(small_matrix)
        compliant, total = table["discord"]["all"]
        assert compliant == 0 and total == 9
        assert "All Apps" in table
        text = render_table3(table)
        assert "0/9" in text

    def test_table4_stun_types(self, small_matrix):
        types = table4(small_matrix)
        assert "discord" not in types  # no STUN at all
        assert "0x0001" in types["whatsapp"]["compliant"]
        assert "0x0801" in types["whatsapp"]["non_compliant"]
        text = render_observed_types(types, "Table 4")
        assert "whatsapp" in text

    def test_table5_rtp_types(self, small_matrix):
        types = table5(small_matrix)
        assert set(types["discord"]["non_compliant"]) == {"96", "101", "102", "120"}
        assert types["whatsapp"]["non_compliant"] == []

    def test_table6_rtcp_types(self, small_matrix):
        types = table6(small_matrix)
        assert set(types["discord"]["non_compliant"]) == {"200", "201", "204",
                                                          "205", "206"}
        assert "200" in types["whatsapp"]["compliant"]


class TestFigures:
    def test_figure3_shares(self, small_matrix):
        shares = figure3(small_matrix)
        for app in ("whatsapp", "discord"):
            assert abs(sum(shares[app].values()) - 1.0) < 1e-9
        assert shares["whatsapp"]["standard"] > 0.9

    def test_figure4_orderings(self, small_matrix):
        fig = figure4(small_matrix)
        assert fig["by_app"]["whatsapp"] > fig["by_app"]["discord"]
        assert fig["by_protocol"]["rtp"] > fig["by_protocol"]["rtcp"]

    def test_figure5_type_ratios(self, small_matrix):
        fig = figure5(small_matrix)
        assert fig["by_app"]["discord"] == 0.0
        assert 0 < fig["by_app"]["whatsapp"] < 1

    def test_render_ratio_series(self):
        text = render_ratio_series({"x": 0.5}, "T")
        assert "50.00%" in text
