"""Fuzz and failure-injection tests: the pipeline must never crash.

A compliance tool is pointed at hostile, malformed, and truncated traffic
by design — every layer must degrade gracefully (reject, classify as
proprietary, or flag) rather than raise unexpected exceptions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComplianceChecker
from repro.utils.rand import DeterministicRandom
from repro.dpi import DatagramClass, DpiEngine
from repro.dpi.tcp import analyze_tcp_records
from repro.packets.packet import PacketRecord
from repro.protocols.quic.header import QuicParseError, parse_datagram
from repro.protocols.rtcp.packets import RtcpParseError, parse_compound
from repro.protocols.rtp.header import RtpPacket, RtpParseError
from repro.protocols.stun.message import ChannelData, StunMessage, StunParseError


def udp(payload, t=1.0, sport=1):
    return PacketRecord(timestamp=t, src_ip="10.0.0.1", src_port=sport,
                        dst_ip="20.0.0.2", dst_port=2, transport="UDP",
                        payload=payload)


class TestParserFuzz:
    """Parsers may raise only their declared error types."""

    @given(st.binary(max_size=200))
    def test_stun_parse(self, data):
        try:
            StunMessage.parse(data)
        except StunParseError:
            pass

    @given(st.binary(max_size=200))
    def test_channeldata_parse(self, data):
        try:
            ChannelData.parse(data)
        except StunParseError:
            pass

    @given(st.binary(max_size=200))
    def test_rtp_parse(self, data):
        try:
            RtpPacket.parse(data, strict=False)
        except RtpParseError:
            pass

    @given(st.binary(max_size=200))
    def test_rtcp_compound_parse(self, data):
        try:
            parse_compound(data, strict=False)
        except RtcpParseError:
            pass

    @given(st.binary(max_size=200))
    def test_quic_parse(self, data):
        try:
            parse_datagram(data)
        except QuicParseError:
            pass


class TestTruncationInjection:
    """Every truncation point of a valid message must be handled."""

    def test_stun_all_truncations(self):
        from repro.protocols.stun.attributes import StunAttribute
        raw = StunMessage(
            msg_type=0x0003, transaction_id=bytes(12),
            attributes=[StunAttribute(0x0019, bytes(4)),
                        StunAttribute(0x0006, b"user:name")],
        ).build()
        for cut in range(len(raw)):
            try:
                StunMessage.parse(raw[:cut])
            except StunParseError:
                pass

    def test_rtp_all_truncations(self):
        from repro.protocols.rtp.extensions import build_one_byte_extension
        raw = RtpPacket(
            payload_type=96, sequence_number=1, timestamp=2, ssrc=3,
            payload=bytes(30), csrcs=[7, 8],
            extension=build_one_byte_extension([(1, b"\x01")]),
        ).build()
        for cut in range(len(raw)):
            try:
                RtpPacket.parse(raw[:cut], strict=False)
            except RtpParseError:
                pass

    def test_bitflip_injection_stun(self):
        raw = bytearray(StunMessage(msg_type=0x0001,
                                    transaction_id=bytes(12)).build())
        rng = DeterministicRandom("fuzz/stun-bitflip")
        for _ in range(200):
            i = rng.randrange(len(raw))
            bit = 1 << rng.randrange(8)
            mutated = bytes(raw[:i]) + bytes([raw[i] ^ bit]) + bytes(raw[i + 1:])
            try:
                StunMessage.parse(mutated)
            except StunParseError:
                pass


class TestPipelineFuzz:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=20))
    def test_dpi_never_crashes(self, payloads):
        records = [udp(p, t=float(i), sport=1000 + i % 3)
                   for i, p in enumerate(payloads)]
        result = DpiEngine().analyze_records(records)
        assert len(result.analyses) == len(records)
        # Checker must survive whatever the DPI surfaced.
        ComplianceChecker().check(result.messages())

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=10))
    def test_tcp_analyzer_never_crashes(self, payloads):
        records = [
            PacketRecord(timestamp=float(i), src_ip="1.1.1.1", src_port=5,
                         dst_ip="2.2.2.2", dst_port=6, transport="TCP",
                         payload=p)
            for i, p in enumerate(payloads)
        ]
        analyze_tcp_records(records)

    def test_random_noise_is_fully_proprietary(self):
        rng = DeterministicRandom("fuzz/noise")
        records = [
            udp(rng.rand_bytes(rng.randint(1, 600)), t=float(i))
            for i in range(200)
        ]
        result = DpiEngine().analyze_records(records)
        fully = sum(1 for a in result.analyses
                    if a.classification is DatagramClass.FULLY_PROPRIETARY)
        # Random bytes must almost never be classified as protocol traffic.
        assert fully >= 195

    def test_message_embedded_at_any_offset_is_found(self):
        """The DPI's core property: offset-invariance up to k."""
        from repro.protocols.stun.attributes import StunAttribute
        rng = DeterministicRandom("fuzz/offsets")
        for offset in (0, 1, 7, 24, 64, 150, 199):
            message = StunMessage(
                msg_type=0x0001, transaction_id=rng.transaction_id(),
                attributes=[StunAttribute(0x8022, b"probe")],
            )
            prefix = rng.rand_bytes(offset)
            # Ensure the prefix cannot itself contain the cookie by chance.
            record = udp(prefix + message.build())
            result = DpiEngine(max_offset=200).analyze_records([record])
            found = [m for m in result.messages()
                     if getattr(m.message, "msg_type", None) == 0x0001]
            assert found, f"STUN at offset {offset} not found"
            assert found[0].offset == offset

    def test_pcap_reader_rejects_garbage(self, tmp_path):
        from repro.packets.pcap import PcapFormatError, read_pcap
        path = tmp_path / "garbage.pcap"
        path.write_bytes(DeterministicRandom("fuzz/garbage-pcap").rand_bytes(500))
        with pytest.raises(PcapFormatError):
            read_pcap(path)
