"""Tests for the STUN/TURN wire-format codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.stun.attributes import (
    StunAttribute,
    decode_address,
    decode_error_code,
    decode_xor_address,
    encode_address,
    encode_error_code,
    encode_xor_address,
    parse_attributes,
)
from repro.protocols.stun.constants import (
    MAGIC_COOKIE,
    AttributeType,
    MessageClass,
    StunMethod,
    attribute_name,
    is_comprehension_required,
    message_class,
    message_method,
    message_type,
    message_type_name,
)
from repro.protocols.stun.message import (
    ChannelData,
    StunMessage,
    StunParseError,
    build_with_fingerprint,
    looks_like_stun,
)
from repro.utils.bytesview import TruncatedError


class TestMessageTypeEncoding:
    def test_binding_request_is_0001(self):
        assert message_type(StunMethod.BINDING, MessageClass.REQUEST) == 0x0001

    def test_binding_success_is_0101(self):
        assert message_type(StunMethod.BINDING, MessageClass.SUCCESS_RESPONSE) == 0x0101

    def test_binding_error_is_0111(self):
        assert message_type(StunMethod.BINDING, MessageClass.ERROR_RESPONSE) == 0x0111

    def test_turn_types(self):
        assert message_type(StunMethod.ALLOCATE, MessageClass.REQUEST) == 0x0003
        assert message_type(StunMethod.ALLOCATE, MessageClass.SUCCESS_RESPONSE) == 0x0103
        assert message_type(StunMethod.ALLOCATE, MessageClass.ERROR_RESPONSE) == 0x0113
        assert message_type(StunMethod.SEND, MessageClass.INDICATION) == 0x0016
        assert message_type(StunMethod.DATA, MessageClass.INDICATION) == 0x0017
        assert message_type(StunMethod.CHANNEL_BIND, MessageClass.REQUEST) == 0x0009

    def test_goog_ping_types(self):
        assert message_type(StunMethod.GOOG_PING, MessageClass.REQUEST) == 0x0200
        assert message_type(StunMethod.GOOG_PING, MessageClass.SUCCESS_RESPONSE) == 0x0300

    @given(st.integers(0, 0xFFF), st.sampled_from(list(MessageClass)))
    def test_compose_decompose_round_trip(self, method, msg_class):
        encoded = message_type(method, msg_class)
        assert encoded & 0xC000 == 0
        assert message_method(encoded) == method
        assert message_class(encoded) is msg_class

    def test_type_names(self):
        assert message_type_name(0x0001) == "Binding Request"
        assert message_type_name(0x0113) == "Allocate Error Response"
        assert message_type_name(0x0800) is None

    def test_comprehension_ranges(self):
        assert is_comprehension_required(0x0001)
        assert not is_comprehension_required(0x8022)


class TestAttributes:
    def test_tlv_round_trip(self):
        attr = StunAttribute(0x8022, b"software-name")
        parsed = parse_attributes(attr.build())
        assert parsed == [attr]

    def test_padding_to_four(self):
        attr = StunAttribute(0x0006, b"abcde")
        raw = attr.build()
        assert len(raw) == 4 + 8  # 5 bytes padded to 8
        assert parse_attributes(raw)[0].value == b"abcde"

    def test_multiple_attributes(self):
        raw = StunAttribute(1, b"a").build() + StunAttribute(2, b"bb").build()
        parsed = parse_attributes(raw)
        assert [a.attr_type for a in parsed] == [1, 2]

    def test_truncated_strict_raises(self):
        raw = StunAttribute(1, b"abcd").build()[:-2]
        with pytest.raises(TruncatedError):
            parse_attributes(raw)

    def test_truncated_lenient_drops(self):
        raw = StunAttribute(1, b"abcd").build() + b"\x00\x02\x00\x08"
        parsed = parse_attributes(raw, strict=False)
        assert len(parsed) == 1

    def test_attribute_names(self):
        assert attribute_name(int(AttributeType.XOR_MAPPED_ADDRESS)) == "XOR-MAPPED-ADDRESS"
        assert attribute_name(0x4007) is None

    @given(st.integers(0, 0xFFFF), st.binary(max_size=64))
    def test_property_tlv_round_trip(self, attr_type, value):
        parsed = parse_attributes(StunAttribute(attr_type, value).build())
        assert parsed[0].attr_type == attr_type
        assert parsed[0].value == value


class TestAddressCoding:
    def test_plain_ipv4_round_trip(self):
        value = encode_address("192.0.2.5", 3478)
        decoded = decode_address(value)
        assert (decoded.ip, decoded.port, decoded.family) == ("192.0.2.5", 3478, 1)

    def test_plain_ipv6_round_trip(self):
        value = encode_address("2001:db8::7", 19302)
        decoded = decode_address(value)
        assert decoded.ip == "2001:db8::7"
        assert decoded.family == 2

    def test_xor_ipv4_round_trip(self):
        txid = bytes(range(12))
        value = encode_xor_address("203.0.113.9", 54321, txid)
        decoded = decode_xor_address(value, txid)
        assert (decoded.ip, decoded.port) == ("203.0.113.9", 54321)

    def test_xor_ipv6_round_trip(self):
        txid = bytes(range(12))
        value = encode_xor_address("2001:db8::abcd", 1234, txid)
        decoded = decode_xor_address(value, txid)
        assert (decoded.ip, decoded.port) == ("2001:db8::abcd", 1234)

    def test_xor_actually_xors(self):
        txid = bytes(12)
        value = encode_xor_address("192.0.2.1", 80, txid)
        # The encoded port is port ^ (cookie >> 16), not the plain port.
        assert int.from_bytes(value[2:4], "big") == 80 ^ (MAGIC_COOKIE >> 16)

    def test_invalid_family_surfaces_hex(self):
        value = bytes([0, 0x00, 0x0D, 0x96]) + bytes(4)
        decoded = decode_address(value)
        assert decoded.family == 0
        assert not decoded.family_valid

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            decode_address(b"\x00\x01\x00")

    @given(st.integers(0, 65535))
    def test_property_port_xor(self, port):
        txid = bytes(12)
        value = encode_xor_address("10.0.0.1", port, txid)
        assert decode_xor_address(value, txid).port == port


class TestErrorCode:
    def test_round_trip(self):
        decoded = decode_error_code(encode_error_code(438, "Stale Nonce"))
        assert decoded.code == 438
        assert decoded.reason == "Stale Nonce"
        assert decoded.error_class == 4
        assert decoded.number == 38

    def test_short_value_rejected(self):
        with pytest.raises(ValueError):
            decode_error_code(b"\x00\x04")


class TestStunMessage:
    def test_modern_round_trip(self):
        message = StunMessage(
            msg_type=0x0001,
            transaction_id=bytes(range(12)),
            attributes=[StunAttribute(0x8022, b"test-agent")],
        )
        parsed = StunMessage.parse(message.build())
        assert parsed == message
        assert not parsed.classic

    def test_classic_round_trip(self):
        message = StunMessage(
            msg_type=0x0002, transaction_id=bytes(range(16)), classic=True
        )
        parsed = StunMessage.parse(message.build())
        assert parsed.classic
        assert parsed.transaction_id == bytes(range(16))

    def test_magic_cookie_position(self):
        raw = StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build()
        assert int.from_bytes(raw[4:8], "big") == MAGIC_COOKIE

    def test_wrong_txid_length_rejected_on_build(self):
        with pytest.raises(ValueError):
            StunMessage(msg_type=0x0001, transaction_id=bytes(5)).build()
        with pytest.raises(ValueError):
            StunMessage(msg_type=0x0001, transaction_id=bytes(16)).build()

    def test_top_bits_rejected(self):
        raw = bytearray(StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build())
        raw[0] |= 0xC0
        with pytest.raises(StunParseError):
            StunMessage.parse(bytes(raw))

    def test_unaligned_length_rejected(self):
        raw = bytearray(StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build())
        raw[3] = 3
        with pytest.raises(StunParseError):
            StunMessage.parse(bytes(raw))

    def test_length_overrun_rejected(self):
        raw = bytearray(StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build())
        raw[2:4] = (400).to_bytes(2, "big")
        with pytest.raises(StunParseError):
            StunMessage.parse(bytes(raw))

    def test_strict_rejects_trailing_bytes(self):
        raw = StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build() + b"\x00" * 4
        with pytest.raises(StunParseError):
            StunMessage.parse(raw)
        parsed = StunMessage.parse(raw, strict=False)
        assert parsed.wire_length == len(raw) - 4

    def test_attribute_accessors(self):
        message = StunMessage(
            msg_type=0x0001,
            transaction_id=bytes(12),
            attributes=[StunAttribute(1, b"a"), StunAttribute(2, b"b")],
        )
        assert message.attribute(2).value == b"b"
        assert message.attribute(9) is None
        assert message.attribute_types() == [1, 2]

    def test_method_and_class_properties(self):
        message = StunMessage(msg_type=0x0113, transaction_id=bytes(12))
        assert message.method == StunMethod.ALLOCATE
        assert message.msg_class is MessageClass.ERROR_RESPONSE

    def test_build_with_fingerprint_verifies(self):
        import zlib

        message = StunMessage(
            msg_type=0x0001,
            transaction_id=bytes(12),
            attributes=[StunAttribute(0x0006, b"user")],
        )
        raw = build_with_fingerprint(message)
        parsed = StunMessage.parse(raw)
        assert parsed.attributes[-1].attr_type == AttributeType.FINGERPRINT
        expected = (zlib.crc32(raw[:-8]) & 0xFFFFFFFF) ^ 0x5354554E
        assert int.from_bytes(parsed.attributes[-1].value, "big") == expected


class TestChannelData:
    def test_round_trip(self):
        frame = ChannelData(channel=0x4001, data=b"media-bytes")
        parsed = ChannelData.parse(frame.build())
        assert parsed == frame
        assert parsed.channel_valid

    def test_reserved_channel_flagged(self):
        assert not ChannelData(channel=0x5000, data=b"").channel_valid

    def test_out_of_range_rejected(self):
        raw = ChannelData(channel=0x4001, data=b"x").build()
        bad = b"\x30\x00" + raw[2:]
        with pytest.raises(StunParseError):
            ChannelData.parse(bad)

    def test_trailing_bytes_strict(self):
        raw = ChannelData(channel=0x4001, data=b"abc").build() + b"\x00"
        with pytest.raises(StunParseError):
            ChannelData.parse(raw)
        assert ChannelData.parse(raw, strict=False).data == b"abc"


class TestLooksLikeStun:
    def test_accepts_modern(self):
        assert looks_like_stun(StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build())

    def test_accepts_classic(self):
        raw = StunMessage(msg_type=0x0001, transaction_id=bytes(16), classic=True).build()
        assert looks_like_stun(raw)

    def test_rejects_short(self):
        assert not looks_like_stun(b"\x00\x01\x00\x00")

    def test_rejects_top_bits(self):
        assert not looks_like_stun(b"\xc0\x01\x00\x00" + bytes(16))

    def test_rejects_unaligned_length(self):
        assert not looks_like_stun(b"\x00\x01\x00\x03" + bytes(20))

    def test_rejects_overrun_length(self):
        assert not looks_like_stun(b"\x00\x01\x00\x40" + bytes(16))

    @given(st.binary(min_size=0, max_size=60))
    def test_never_crashes(self, data):
        looks_like_stun(data)
