"""Structure-aware mutation fuzzer: oracle exactness, determinism, shrinking.

Every mutator targets one criterion and the oracle demands the checker
attribute the mutation to exactly that criterion — no more, no fewer,
no mislabels.  The campaign itself must be a pure function of its seed.
"""

import pytest

from repro.conformance import (
    MUTATORS,
    SEED_KINDS,
    Mutated,
    builtin_seeds,
    fuzz,
    minimize_wire,
    rewrap,
    run_oracle,
)
from repro.core import ComplianceChecker
from repro.core.verdict import Criterion
from repro.dpi import Protocol
from repro.utils.rand import DeterministicRandom


def _mutator(name):
    return next(m for m in MUTATORS if m.name == name)


def _seed(kind):
    return next(s for s in builtin_seeds() if s.kind == kind)


class TestMutatorInventory:
    def test_every_criterion_is_targeted_for_every_protocol_family(self):
        by_protocol = {}
        for mutator in MUTATORS:
            by_protocol.setdefault(mutator.protocol, set()).add(
                int(mutator.criterion)
            )
        # STUN/TURN and RTCP rules span all five criteria; RTP spans the
        # structural ones; QUIC only has header-field (C2) rules.
        assert by_protocol[Protocol.STUN_TURN] == {1, 2, 3, 4, 5}
        assert by_protocol[Protocol.RTCP] == {1, 2, 3, 4, 5}
        assert by_protocol[Protocol.RTP] == {2, 3, 4}
        assert by_protocol[Protocol.QUIC] == {2}

    def test_every_mutator_kind_is_a_known_seed_kind(self):
        for mutator in MUTATORS:
            assert mutator.kinds, mutator.name
            for kind in mutator.kinds:
                assert kind in SEED_KINDS, (mutator.name, kind)

    def test_builtin_seeds_cover_every_kind(self):
        assert {seed.kind for seed in builtin_seeds()} == set(SEED_KINDS)


class TestOracle:
    def test_campaign_attributes_every_mutation_exactly(self):
        report = fuzz(iterations=400, seed=0)
        failures = "\n".join(f.render() for f in report.failures)
        assert report.ok, f"oracle misses:\n{failures}"
        assert report.executed + report.skipped == 400
        assert report.executed >= 390

    def test_campaign_exercises_every_mutator(self):
        report = fuzz(iterations=400, seed=0)
        assert set(report.per_mutator) == {m.name for m in MUTATORS}
        assert all(count > 0 for count in report.per_mutator.values())

    def test_campaign_is_deterministic_in_its_seed(self):
        first = fuzz(iterations=150, seed=5, minimize=False)
        second = fuzz(iterations=150, seed=5, minimize=False)
        assert first.executed == second.executed
        assert first.skipped == second.skipped
        assert first.per_mutator == second.per_mutator
        assert ([f.payload_hex for f in first.failures]
                == [f.payload_hex for f in second.failures])

    def test_oracle_rejects_an_unmutated_message(self):
        seed = _seed("stun-request")
        extracted = rewrap(Protocol.STUN_TURN, seed.data)
        result = run_oracle(
            _mutator("stun-undefined-message-type"),
            Mutated(messages=[extracted]),
            ComplianceChecker(),
        )
        assert not result.ok
        assert result.got == "compliant"

    def test_oracle_rejects_an_unparseable_mutation(self):
        result = run_oracle(
            _mutator("stun-undefined-message-type"),
            Mutated(messages=[]),
            ComplianceChecker(),
        )
        assert not result.ok
        assert "did not re-parse" in result.got

    def test_oracle_rejects_a_mislabeled_criterion(self):
        mutator = _mutator("stun-undefined-attribute")
        mutated = mutator.apply(
            _seed("stun-request"), DeterministicRandom("oracle-mislabel")
        )
        wrong = _mutator("stun-undefined-message-type")
        assert mutator.criterion is Criterion.ATTRIBUTE_TYPES
        assert wrong.criterion is Criterion.MESSAGE_TYPE
        result = run_oracle(wrong, mutated, ComplianceChecker())
        assert not result.ok


class TestMinimizer:
    def test_shrinks_while_preserving_the_signature(self):
        # An SR with three trailing junk bytes: minimization may only strip
        # trailer bytes (anything else breaks the length field and fails to
        # re-parse), so the signature pins C5/undefined-trailing-bytes.
        wire = _seed("rtcp-sr").data + b"\x01\x02\x03"
        checker = ComplianceChecker()
        signature = checker.check([rewrap(Protocol.RTCP, wire)])[0].violation_keys()
        assert signature == [(int(Criterion.SEMANTICS), "undefined-trailing-bytes")]
        minimized = minimize_wire(Protocol.RTCP, wire, signature, checker)
        assert len(minimized) < len(wire)
        verdict = checker.check([rewrap(Protocol.RTCP, minimized)])[0]
        assert verdict.violation_keys() == signature

    def test_returns_input_unchanged_when_signature_does_not_hold(self):
        seed = _seed("stun-request")
        checker = ComplianceChecker()
        bogus = [(int(Criterion.MESSAGE_TYPE), "undefined-message-type")]
        assert minimize_wire(
            Protocol.STUN_TURN, seed.data, bogus, checker
        ) == seed.data
