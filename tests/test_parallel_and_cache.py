"""Tests for the parallel matrix executor and the DPI payload-dedup cache."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core.metrics import TypeComplianceEntry, VolumeCompliance
from repro.core import ComplianceSummary
from repro.dpi import CandidateCache, DpiEngine
from repro.experiments import (
    ExperimentConfig,
    matrix_cells,
    run_matrix,
    run_matrix_parallel,
)
from repro.experiments.runner import MAX_EXAMPLE_VIOLATIONS, merge_summaries
from repro.filtering import TwoStageFilter
from repro.protocols.rtp.header import RtpPacket
from repro.packets.packet import PacketRecord

CONFIG = ExperimentConfig(call_duration=6.0, media_scale=0.25, seed=7)
APPS = ("whatsapp", "discord")
NETWORKS = (NetworkCondition.WIFI_RELAY, NetworkCondition.CELLULAR)


def udp(t, payload, sport=50000, dport=3478):
    return PacketRecord(
        timestamp=t, src_ip="10.0.0.1", src_port=sport,
        dst_ip="20.0.0.2", dst_port=dport, transport="UDP", payload=payload,
    )


class TestParallelParity:
    def test_parallel_matches_serial(self):
        serial = run_matrix(APPS, NETWORKS, config=CONFIG, workers=1)
        parallel = run_matrix(APPS, NETWORKS, config=CONFIG, workers=4)
        assert set(serial.per_app) == set(parallel.per_app)
        assert list(serial.per_app) == list(parallel.per_app)  # app order
        for app in APPS:
            s, p = serial.per_app[app], parallel.per_app[app]
            assert p.summary == s.summary
            assert p.class_counts == s.class_counts
            assert p.protocol_counts == s.protocol_counts
            assert p.raw == s.raw and p.kept == s.kept
            assert p.filter_precision == s.filter_precision
            assert p.filter_recall == s.filter_recall

    def test_repeats_parity(self):
        config = ExperimentConfig(call_duration=5.0, media_scale=0.25,
                                  seed=2, repeats=2)
        serial = run_matrix(("discord",), (NetworkCondition.WIFI_RELAY,),
                            config=config, workers=1)
        parallel = run_matrix(("discord",), (NetworkCondition.WIFI_RELAY,),
                              config=config, workers=2)
        assert parallel.per_app["discord"].summary == serial.per_app["discord"].summary

    def test_cell_enumeration_order(self):
        cells = matrix_cells(("a", "b"), (NetworkCondition.WIFI_RELAY,
                                          NetworkCondition.CELLULAR), 2)
        assert cells[0] == ("a", NetworkCondition.WIFI_RELAY, 0)
        assert cells[1] == ("a", NetworkCondition.WIFI_RELAY, 1)
        assert cells[2] == ("a", NetworkCondition.CELLULAR, 0)
        assert cells[-1] == ("b", NetworkCondition.CELLULAR, 1)
        assert len(cells) == 8

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_matrix_parallel(APPS, NETWORKS, CONFIG, workers=0)


class TestCandidateCache:
    def test_hit_miss_accounting(self):
        engine = DpiEngine()
        keepalive = bytes.fromhex("000100002112a442") + bytes(12)
        records = [udp(1.0 + i * 0.5, keepalive) for i in range(10)]
        result = engine.analyze_records(records)
        assert result.cache_misses == 1
        assert result.cache_hits == 9
        assert result.cache_hit_rate == pytest.approx(0.9)
        assert engine.cache_hits == 9 and engine.cache_misses == 1

    def test_unique_payloads_all_miss(self):
        engine = DpiEngine()
        records = [udp(1.0 + i, bytes([i]) * 20) for i in range(5)]
        result = engine.analyze_records(records)
        assert result.cache_hits == 0
        assert result.cache_misses == 5

    def test_lru_eviction_bound(self):
        cache = CandidateCache(maxsize=2)
        cache.put(b"a", [])
        cache.put(b"b", [])
        cache.put(b"c", [])  # evicts "a"
        assert len(cache) == 2
        assert cache.get(b"a") is None  # miss: evicted
        assert cache.get(b"b") is not None
        assert cache.get(b"c") is not None
        assert cache.misses == 1 and cache.hits == 2

    def test_lru_recency_order(self):
        cache = CandidateCache(maxsize=2)
        cache.put(b"a", [])
        cache.put(b"b", [])
        assert cache.get(b"a") is not None  # refresh "a"
        cache.put(b"c", [])  # now evicts "b", not "a"
        assert cache.get(b"a") is not None
        assert cache.get(b"b") is None

    def test_cache_disabled(self):
        engine = DpiEngine(cache_size=0)
        keepalive = bytes.fromhex("000100002112a442") + bytes(12)
        result = engine.analyze_records([udp(1.0, keepalive),
                                         udp(2.0, keepalive)])
        assert result.cache_hits == 0 and result.cache_misses == 0
        assert engine.cache_len == 0

    def test_cached_results_identical(self):
        # The RTP-continuation rule mutates Candidate.length in place; the
        # cache must hand out copies so a truncated candidate from one
        # datagram never leaks into the next identical datagram.
        first = RtpPacket(payload_type=96, sequence_number=10, timestamp=0,
                          ssrc=0xAB, payload=bytes(20)).build()
        second = RtpPacket(payload_type=96, sequence_number=11, timestamp=160,
                           ssrc=0xAB, payload=bytes(20)).build()
        dual = first + second
        records = []
        for i in range(6):
            records.append(udp(1.0 + i * 0.02, dual))
        engine = DpiEngine()
        once = engine.analyze_records(records)
        again = engine.analyze_records(records)
        assert again.cache_hits > 0
        assert [len(a.messages) for a in once.analyses] == \
               [len(a.messages) for a in again.analyses]
        for a, b in zip(once.analyses, again.analyses):
            assert [(m.offset, m.length) for m in a.messages] == \
                   [(m.offset, m.length) for m in b.messages]

    def test_whatsapp_relay_hit_rate(self):
        # Engines persist across analyses (module-level factories), so the
        # recurring keepalives/probes of successive identical scans hit.
        trace = get_simulator("whatsapp").simulate(
            CallConfig(network=NetworkCondition.WIFI_RELAY, seed=0,
                       call_duration=6.0, media_scale=0.25)
        )
        kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
        engine = DpiEngine()
        engine.analyze_records(kept)
        for _ in range(2):
            rescan = engine.analyze_records(kept)
            assert rescan.cache_hit_rate > 0.5
        assert engine.cache_hit_rate > 0.5


class TestMergeSummaryCap:
    @staticmethod
    def _summary(examples):
        entry = TypeComplianceEntry(
            protocol="stun_turn", type_label="0x0801", total=len(examples),
            non_compliant=len(examples), example_violations=list(examples),
        )
        return ComplianceSummary(
            app="x", volume=VolumeCompliance(0, len(examples)),
            volume_by_protocol={}, types={("stun_turn", "0x0801"): entry},
        )

    def test_wholesale_copy_is_capped(self):
        a = self._summary([])
        a.types.clear()  # "a" has no entry for the key: copy branch
        b = self._summary([f"violation-{i}" for i in range(5)])
        merged = merge_summaries(a, b)
        entry = merged.types[("stun_turn", "0x0801")]
        assert len(entry.example_violations) == MAX_EXAMPLE_VIOLATIONS

    def test_extend_branch_is_capped(self):
        a = self._summary(["a1", "a2"])
        b = self._summary([f"b{i}" for i in range(5)])
        merged = merge_summaries(a, b)
        entry = merged.types[("stun_turn", "0x0801")]
        assert len(entry.example_violations) == MAX_EXAMPLE_VIOLATIONS
        assert entry.example_violations[:2] == ["a1", "a2"]

    def test_merge_does_not_mutate_inputs(self):
        a = self._summary(["a1"])
        b = self._summary(["b1", "b2"])
        merge_summaries(a, b)
        assert a.types[("stun_turn", "0x0801")].example_violations == ["a1"]


class TestCliWorkers:
    def test_matrix_workers_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["matrix", "--workers", "2"])
        assert args.workers == 2
        args = build_parser().parse_args(["matrix"])
        assert args.workers is None

    def test_report_workers_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "--workers", "1"])
        assert args.workers == 1
