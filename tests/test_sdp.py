"""Tests for the SDP codec."""

import pytest

from repro.ice.candidates import Candidate, CandidateType
from repro.protocols.sdp import (
    MediaDescription,
    SdpParseError,
    SessionDescription,
    candidate_from_sdp,
    candidate_to_sdp,
)


def sample_session():
    audio = MediaDescription(
        media="audio",
        port=9,
        payload_types=[111, 103],
        rtpmap={111: "opus/48000/2", 103: "ISAC/16000"},
        fmtp={111: "minptime=10;useinbandfec=1"},
        connection_ip="0.0.0.0",
        candidates=[
            Candidate(ip="192.168.1.5", port=50000,
                      candidate_type=CandidateType.HOST),
            Candidate(ip="203.0.113.9", port=41000,
                      candidate_type=CandidateType.SERVER_REFLEXIVE,
                      related_ip="192.168.1.5", related_port=50000),
        ],
    )
    video = MediaDescription(
        media="video", port=9, payload_types=[96, 97],
        rtpmap={96: "VP8/90000", 97: "rtx/90000"},
    )
    return SessionDescription(
        origin_username="repro",
        session_id=12345,
        session_version=2,
        origin_ip="192.168.1.5",
        session_name="call",
        ice_ufrag="Fr4g",
        ice_pwd="s3cretpassword0123456789",
        media=[audio, video],
    )


class TestCandidateLines:
    def test_round_trip_host(self):
        candidate = Candidate(ip="10.0.0.1", port=1234,
                              candidate_type=CandidateType.HOST)
        assert candidate_from_sdp(candidate_to_sdp(candidate)) == candidate

    def test_round_trip_relay_with_raddr(self):
        candidate = Candidate(ip="198.18.0.5", port=40000,
                              candidate_type=CandidateType.RELAYED,
                              related_ip="203.0.113.1", related_port=50001)
        parsed = candidate_from_sdp(candidate_to_sdp(candidate))
        assert parsed == candidate

    def test_real_world_line(self):
        line = ("842163049 1 udp 1677729535 203.0.113.7 46622 typ srflx "
                "raddr 10.0.1.1 rport 46622")
        parsed = candidate_from_sdp(line)
        assert parsed.candidate_type is CandidateType.SERVER_REFLEXIVE
        assert parsed.ip == "203.0.113.7"
        assert parsed.related_ip == "10.0.1.1"

    def test_malformed_rejected(self):
        with pytest.raises(SdpParseError):
            candidate_from_sdp("1 1 udp 99 1.2.3.4 5")
        with pytest.raises(SdpParseError):
            candidate_from_sdp("1 1 tcp 99 1.2.3.4 5 typ host")
        with pytest.raises(SdpParseError):
            candidate_from_sdp("1 1 udp 99 1.2.3.4 5 typ wormhole")


class TestSessionDescription:
    def test_serialize_parse_round_trip(self):
        session = sample_session()
        parsed = SessionDescription.parse(session.serialize())
        assert parsed.session_id == 12345
        assert parsed.ice_ufrag == "Fr4g"
        assert len(parsed.media) == 2
        audio = parsed.media[0]
        assert audio.payload_types == [111, 103]
        assert audio.codec_name(111) == "opus"
        assert audio.fmtp[111] == "minptime=10;useinbandfec=1"
        assert len(audio.candidates) == 2
        assert audio.candidates[1].candidate_type is CandidateType.SERVER_REFLEXIVE

    def test_crlf_line_endings(self):
        text = sample_session().serialize()
        assert "\r\n" in text
        assert SessionDescription.parse(text.replace("\r\n", "\n")).media

    def test_unknown_attributes_preserved(self):
        text = sample_session().serialize()
        text += "a=extmap:1 urn:ietf:params:rtp-hdrext:ssrc-audio-level\r\n"
        parsed = SessionDescription.parse(text)
        keys = [k for k, _ in parsed.media[-1].attributes]
        assert "extmap" in keys

    def test_bad_version_rejected(self):
        with pytest.raises(SdpParseError):
            SessionDescription.parse("v=1\r\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(SdpParseError):
            SessionDescription.parse("v=0\r\nnonsense\r\n")

    def test_malformed_media_rejected(self):
        with pytest.raises(SdpParseError):
            SessionDescription.parse("v=0\r\nm=audio\r\n")

    def test_candidates_usable_by_checklist(self):
        """SDP candidates feed directly into the ICE machinery."""
        from repro.ice import Checklist
        session = sample_session()
        parsed = SessionDescription.parse(session.serialize())
        local = parsed.media[0].candidates
        remote = [
            Candidate(ip="192.168.1.9", port=51000,
                      candidate_type=CandidateType.HOST),
        ]
        checklist = Checklist.form(local, remote, controlling=True)
        assert checklist.pairs
