"""Tests for the DPI extensions: adaptive offset bounds and TCP analysis."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine, Protocol
from repro.dpi.adaptive import AdaptiveDpiEngine
from repro.dpi.tcp import analyze_tcp_records
from repro.filtering import TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.packets import ReceiverReport
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage


@pytest.fixture(scope="module")
def zoom_kept():
    trace = get_simulator("zoom").simulate(
        CallConfig(network=NetworkCondition.WIFI_RELAY, seed=6,
                   call_duration=12.0, media_scale=0.3)
    )
    return TwoStageFilter(trace.window).apply(trace.records).kept_records


class TestAdaptiveDpi:
    def test_matches_fixed_engine(self, zoom_kept):
        fixed = DpiEngine().analyze_records(zoom_kept)
        adaptive = AdaptiveDpiEngine()
        result = adaptive.analyze_records(zoom_kept)
        assert len(result.messages()) == len(fixed.messages())
        assert result.by_class() == fixed.by_class()

    def test_learns_zoom_header_depth(self, zoom_kept):
        adaptive = AdaptiveDpiEngine()
        adaptive.analyze_records(zoom_kept)
        # Zoom's headers are 24 bytes (32 with the type-7 wrapper).
        assert 24 <= adaptive.stats.max_learned <= 40

    def test_opaque_streams_keep_probe_bound(self):
        records = [
            PacketRecord(timestamp=float(i), src_ip="1.1.1.1", src_port=1,
                         dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                         payload=bytes([0x01]) * 500)
            for i in range(100)
        ]
        adaptive = AdaptiveDpiEngine(probe_packets=10)
        result = adaptive.analyze_records(records)
        assert not result.messages()
        assert not adaptive.stats.learned_offsets

    def test_invalid_probe_packets(self):
        with pytest.raises(ValueError):
            AdaptiveDpiEngine(probe_packets=0)


def tcp_record(t, payload, sport=50000, src="10.0.0.1", dst="20.0.0.2"):
    return PacketRecord(
        timestamp=t, src_ip=src, src_port=sport, dst_ip=dst, dst_port=443,
        transport="TCP", payload=payload,
    )


class TestTcpAnalysis:
    def test_stun_over_tcp(self):
        messages = [
            StunMessage(msg_type=0x0001, transaction_id=bytes([i] * 12),
                        attributes=[StunAttribute(0x8022, b"agent")])
            for i in range(3)
        ]
        # Back-to-back messages split arbitrarily across segments.
        stream = b"".join(m.build() for m in messages)
        records = [
            tcp_record(1.0, stream[:30]),
            tcp_record(1.1, stream[30:65]),
            tcp_record(1.2, stream[65:]),
        ]
        analyses = analyze_tcp_records(records)
        found = [m for a in analyses for m in a.messages]
        assert len(found) == 3
        assert all(m.protocol is Protocol.STUN_TURN for m in found)

    def test_rfc4571_framed_rtp(self):
        packets = [
            RtpPacket(payload_type=96, sequence_number=i, timestamp=i * 160,
                      ssrc=0xAA, payload=bytes(50)).build()
            for i in range(4)
        ]
        stream = b"".join(len(p).to_bytes(2, "big") + p for p in packets)
        analyses = analyze_tcp_records([tcp_record(1.0, stream)])
        found = [m for a in analyses for m in a.messages]
        assert len(found) == 4
        assert all(m.protocol is Protocol.RTP for m in found)
        assert [m.message.sequence_number for m in found] == [0, 1, 2, 3]

    def test_rfc4571_framed_rtcp(self):
        packet = ReceiverReport(ssrc=5).to_packet().build()
        stream = len(packet).to_bytes(2, "big") + packet
        analyses = analyze_tcp_records([tcp_record(1.0, stream)])
        found = [m for a in analyses for m in a.messages]
        assert len(found) == 1
        assert found[0].protocol is Protocol.RTCP

    def test_opaque_tls_yields_nothing(self):
        from repro.protocols.tls.client_hello import build_client_hello
        records = [tcp_record(1.0, build_client_hello("signal.example.com"))]
        analyses = analyze_tcp_records(records)
        assert not any(a.messages for a in analyses)
        assert analyses[0].opaque_bytes > 0

    def test_directions_analyzed_separately(self):
        request = StunMessage(msg_type=0x0001, transaction_id=bytes(12)).build()
        response = StunMessage(msg_type=0x0101, transaction_id=bytes(12)).build()
        records = [
            tcp_record(1.0, request),
            PacketRecord(timestamp=1.1, src_ip="20.0.0.2", src_port=443,
                         dst_ip="10.0.0.1", dst_port=50000, transport="TCP",
                         payload=response),
        ]
        analyses = analyze_tcp_records(records)
        assert len(analyses) == 2
        types = sorted(m.message.msg_type for a in analyses for m in a.messages)
        assert types == [0x0001, 0x0101]

    def test_udp_records_ignored(self):
        record = PacketRecord(timestamp=1.0, src_ip="1.1.1.1", src_port=1,
                              dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                              payload=bytes(40))
        assert analyze_tcp_records([record]) == []

    def test_mixed_stun_and_framed_media(self):
        stun = StunMessage(msg_type=0x0003, transaction_id=bytes(12)).build()
        rtp = RtpPacket(payload_type=96, sequence_number=1, timestamp=2,
                        ssrc=3, payload=bytes(20)).build()
        stream = stun + len(rtp).to_bytes(2, "big") + rtp
        analyses = analyze_tcp_records([tcp_record(1.0, stream)])
        protocols = [m.protocol for a in analyses for m in a.messages]
        assert protocols == [Protocol.STUN_TURN, Protocol.RTP]
