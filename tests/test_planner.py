"""Adaptive execution planner: cost model, micro-probe, plan selection.

Covers the ISSUE 7 planner stack end to end: calibration-cache
round-trips and version drift, probe parity against the golden
conformance corpus (a probed cell must be bit-identical to its
unprobed golden), planner determinism, measured-history cell costs,
shared-pool finalization, and the ``--plan``/``--calibration-file``
CLI surface.
"""

import dataclasses
import json

import pytest

from repro.apps import NetworkCondition
from repro.cli import build_parser, main as cli_main
from repro.conformance import CorpusConfig, default_corpus_dir, load_cell
from repro.conformance.differ import _VERDICT_KEYS
from repro.conformance.golden import (
    build_facts,
    cell_name,
    corpus_cells,
    experiment_config,
    load_manifest,
)
from repro.experiments import (
    ExperimentConfig,
    expected_cell_cost,
    run_experiment,
    submission_order,
)
from repro.experiments import costmodel
from repro.experiments.costmodel import (
    CALIBRATION_VERSION,
    DEFAULT_RATES,
    EMA_ALPHA,
    Calibration,
    CalibrationStore,
    cell_key,
    load_calibration,
    probe_records,
    rates_from_stage_stats,
    save_calibration,
    workload_signals,
)
from repro.experiments.runner import run_cell_pipeline
from repro.experiments.scheduler import (
    POOL_FALLBACK_ERRORS,
    ExecutionPlan,
    PlanSignals,
    PoolClosedError,
    _DEFAULT_CHUNK_SIZE,
    fixed_plan,
    plan_cell_execution,
    plan_execution,
    reopen_shared_pool,
    shared_pool,
    shutdown_shared_pool,
)
from repro.pipeline import DEFAULT_CHUNK_SIZE
from repro.pipeline.stage import StageStats


@pytest.fixture(autouse=True)
def _isolated_stores():
    """Never let one test's calibration store leak into another."""
    costmodel.reset_stores()
    yield
    costmodel.reset_stores()


def _signals(**overrides):
    base = dict(
        records=4000,
        kept_records=3600,
        flows=64,
        max_flow_records=200,
        cpu_count=4,
        rates=dict(DEFAULT_RATES),
        columnar_available=True,
        fastpath=True,
        cells=1,
        rate_source="default",
    )
    base.update(overrides)
    return PlanSignals(**base)


class TestCalibration:
    def test_round_trip(self, tmp_path):
        calibration = Calibration()
        calibration.observe_rate("dpi_scalar", 9000.0)
        calibration.observe_rate("filter", 70000.0)
        calibration.observe_cell("zoom|wifi_relay", 0.08, 2.0)
        calibration.runs = 3
        path = tmp_path / "calibration.json"
        save_calibration(calibration, path)
        loaded = load_calibration(path)
        assert loaded.as_dict() == calibration.as_dict()
        assert loaded.calibrated

    def test_version_drift_resets(self, tmp_path):
        path = tmp_path / "calibration.json"
        payload = Calibration(rates={"dpi_scalar": 9000.0}, runs=5).as_dict()
        payload["version"] = CALIBRATION_VERSION + 1
        path.write_text(json.dumps(payload))
        loaded = load_calibration(path)
        assert loaded.rates == {}
        assert loaded.runs == 0
        assert not loaded.calibrated

    def test_corrupt_or_missing_file_comes_up_empty(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert load_calibration(garbage).rates == {}
        assert load_calibration(tmp_path / "absent.json").rates == {}
        # Wrong-typed values are dropped, not propagated.
        path = tmp_path / "typed.json"
        path.write_text(json.dumps({
            "version": CALIBRATION_VERSION,
            "rates": {"dpi_scalar": "fast", "filter": -5, "bogus_key": 10.0},
            "cell_unit_seconds": {"zoom|wifi_relay": "slow"},
            "runs": "many",
        }))
        loaded = load_calibration(path)
        assert loaded.rates == {}
        assert loaded.cell_unit_seconds == {}
        assert loaded.runs == 0

    def test_ema_moves_toward_new_observation(self):
        calibration = Calibration()
        calibration.observe_rate("dpi_scalar", 10000.0)
        assert calibration.rates["dpi_scalar"] == 10000.0
        calibration.observe_rate("dpi_scalar", 20000.0)
        expected = 10000.0 + EMA_ALPHA * 10000.0
        assert calibration.rates["dpi_scalar"] == pytest.approx(expected)
        # Non-positive observations are ignored, unknown keys rejected.
        calibration.observe_rate("dpi_scalar", 0.0)
        assert calibration.rates["dpi_scalar"] == pytest.approx(expected)
        with pytest.raises(KeyError):
            calibration.observe_rate("warp_drive", 1.0)

    def test_expected_cell_seconds_scales_with_units(self):
        calibration = Calibration()
        assert calibration.expected_cell_seconds("zoom|wifi_relay", 4.0) is None
        calibration.observe_cell("zoom|wifi_relay", 0.2, 4.0)
        assert calibration.expected_cell_seconds(
            "zoom|wifi_relay", 4.0
        ) == pytest.approx(0.2)
        assert calibration.expected_cell_seconds(
            "zoom|wifi_relay", 8.0
        ) == pytest.approx(0.4)

    def test_rates_from_stage_stats_maps_backend(self):
        stats = {
            "filter": StageStats("filter", records_in=1000, wall_seconds=0.01),
            "dpi": StageStats("dpi", records_in=900, wall_seconds=0.09),
            "check": StageStats("check", records_in=800, wall_seconds=0.004),
            # Timer noise and unknown stages contribute nothing.
            "noise": StageStats("noise", records_in=10, wall_seconds=1.0),
            "dpi2": StageStats("dpi2", records_in=10, wall_seconds=0.0),
        }
        scalar = rates_from_stage_stats(stats, "scalar")
        assert scalar["filter"] == pytest.approx(100000.0)
        assert scalar["dpi_scalar"] == pytest.approx(10000.0)
        assert "dpi_columnar" not in scalar
        columnar = rates_from_stage_stats(stats, "columnar")
        assert columnar["dpi_columnar"] == pytest.approx(10000.0)
        assert "dpi_scalar" not in columnar

    def test_store_update_persists(self, tmp_path):
        path = tmp_path / "calibration.json"
        store = CalibrationStore(path)
        stats = {
            "dpi": StageStats("dpi", records_in=900, wall_seconds=0.09),
        }
        store.update_from_run(
            stats, "scalar",
            cell=cell_key("zoom", "wifi_relay"),
            wall_seconds=0.5, units=2.0,
        )
        reloaded = load_calibration(path)
        assert reloaded.calibrated
        assert reloaded.runs == 1
        assert reloaded.cell_unit_seconds[
            "zoom|wifi_relay"
        ] == pytest.approx(0.25)


class TestProbe:
    @pytest.fixture(scope="class")
    def cell(self):
        from repro.apps import get_simulator
        from repro.experiments.runner import _cell_config

        config = experiment_config(CorpusConfig())
        call_config = _cell_config(NetworkCondition.WIFI_RELAY, config, 0)
        records = list(get_simulator("zoom").iter_records(call_config))
        return records, call_config.window()

    def test_probe_measures_rates_and_kept_ratio(self, cell):
        records, window = cell
        report = probe_records(records, window)
        assert 0 < report.probed_records <= costmodel.PROBE_RECORDS
        assert 0 < report.kept_records <= report.probed_records
        assert report.rates["dpi_scalar"] > 0
        # The probe never runs columnar; the rate is extrapolated from
        # the shipped ratio so backend selection still has a signal.
        ratio = DEFAULT_RATES["dpi_columnar"] / DEFAULT_RATES["dpi_scalar"]
        assert report.rates["dpi_columnar"] == pytest.approx(
            report.rates["dpi_scalar"] * ratio
        )

    def test_workload_signals_single_pass_facts(self, cell):
        records, _ = cell
        signals = workload_signals(records)
        assert signals.records == len(records)
        assert 0 < signals.flows <= signals.records
        assert signals.max_flow_records <= signals.records
        assert signals.mean_payload_bytes > 0
        assert workload_signals([]).records == 0


class TestPlanExecution:
    def test_identical_signals_identical_plan(self):
        first = plan_execution(_signals())
        second = plan_execution(_signals())
        assert first == second
        assert first.as_dict() == second.as_dict()

    def test_single_cpu_never_shards(self):
        plan = plan_execution(_signals(cpu_count=1))
        assert plan.shard_workers == 1
        assert any("clamped" in option or option == "in-process"
                   for option, _ in plan.costs)

    def test_multi_cpu_large_workload_shards(self):
        plan = plan_execution(_signals(
            records=400000, kept_records=380000, flows=512,
            max_flow_records=2000, cpu_count=8,
        ))
        assert plan.shard_workers > 1

    def test_narrow_sweep_window_stays_scalar(self):
        # One flow under fastpath: the pre-lock sweep window is tiny, so
        # the columnar batch pass cannot amortize.
        plan = plan_execution(_signals(
            records=100000, kept_records=100000, flows=1,
            max_flow_records=100000, cpu_count=1,
        ))
        assert plan.dpi_backend == "scalar"
        assert any("too narrow" in reason for reason in plan.rationale)

    def test_columnar_unavailable_stays_scalar(self):
        plan = plan_execution(_signals(columnar_available=False))
        assert plan.dpi_backend == "scalar"

    def test_small_capture_shrinks_chunk(self):
        plan = plan_execution(_signals(
            records=100, kept_records=90, flows=4, max_flow_records=50
        ))
        assert plan.chunk_size == 100
        big = plan_execution(_signals())
        assert big.chunk_size == _DEFAULT_CHUNK_SIZE

    def test_matrix_workers_disable_cell_sharding(self):
        plan = plan_execution(_signals(
            records=400000, kept_records=380000, flows=512,
            max_flow_records=2000, cpu_count=8, cells=18,
        ))
        assert plan.workers == 8
        assert plan.shard_workers == 1

    def test_plan_dict_is_json_and_rationale_nonempty(self):
        plan = plan_execution(_signals())
        payload = plan.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["rationale"]
        assert payload["costs"]
        assert payload["signals"]["rate_source"] == "default"

    def test_default_chunk_constant_pins_pipeline_default(self):
        # scheduler duplicates the pipeline default to stay import-light;
        # this is the test the comment there promises.
        assert _DEFAULT_CHUNK_SIZE == DEFAULT_CHUNK_SIZE

    def test_fixed_plan_echoes_knobs(self):
        plan = fixed_plan(2, 3, 128, "columnar")
        assert (plan.workers, plan.shard_workers) == (2, 3)
        assert (plan.chunk_size, plan.dpi_backend) == (128, "columnar")
        assert plan.mode == "fixed"


class TestPlanCellExecution:
    def test_cold_cache_probes_then_calibration_takes_over(self, tmp_path):
        from repro.apps import get_simulator
        from repro.experiments.runner import _cell_config

        config = dataclasses.replace(
            experiment_config(CorpusConfig()),
            plan="auto",
            calibration_file=str(tmp_path / "calibration.json"),
        )
        call_config = _cell_config(NetworkCondition.WIFI_RELAY, config, 0)
        records = list(get_simulator("zoom").iter_records(call_config))
        window = call_config.window()

        cold = plan_cell_execution(records, window, config)
        assert cold.signals.rate_source == "probe"
        assert cold.probe is not None

        store = costmodel.get_store(config.calibration_file)
        store.update_from_run(
            {"dpi": StageStats("dpi", records_in=900, wall_seconds=0.09)},
            "scalar",
        )
        warm = plan_cell_execution(records, window, config)
        assert warm.signals.rate_source == "calibration"
        assert warm.probe is None

    def test_experiment_feeds_calibration_cache(self, tmp_path):
        path = tmp_path / "calibration.json"
        config = ExperimentConfig(
            call_duration=4.0, media_scale=0.2, seed=1,
            calibration_file=str(path),
        )
        aggregate = run_experiment("zoom", NetworkCondition.WIFI_RELAY, config)
        assert aggregate.wall_seconds > 0
        assert aggregate.cells == 1
        assert aggregate.plans == []  # fixed mode records no plan
        calibration = load_calibration(path)
        assert calibration.calibrated
        assert cell_key("zoom", "wifi_relay") in calibration.cell_unit_seconds

    def test_invalid_plan_mode_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(plan="bogus")


class TestMeasuredCellCost:
    def test_fresh_cache_falls_back_to_static_cost(self, tmp_path):
        config = ExperimentConfig(
            call_duration=10.0, media_scale=0.5,
            calibration_file=str(tmp_path / "calibration.json"),
        )
        cell = ("zoom", NetworkCondition.WIFI_RELAY, 0)
        assert expected_cell_cost(cell, config) == pytest.approx(5.0)

    def test_measured_history_orders_submission(self, tmp_path):
        path = tmp_path / "calibration.json"
        config = ExperimentConfig(
            call_duration=10.0, media_scale=0.5, calibration_file=str(path)
        )
        store = costmodel.get_store(str(path))
        # Measured history says meet is 3x heavier than zoom per unit.
        store.calibration.observe_cell(cell_key("zoom", "wifi_relay"), 1.0, 5.0)
        store.calibration.observe_cell(cell_key("meet", "wifi_relay"), 3.0, 5.0)
        zoom = ("zoom", NetworkCondition.WIFI_RELAY, 0)
        meet = ("meet", NetworkCondition.WIFI_RELAY, 0)
        assert expected_cell_cost(meet, config) > expected_cell_cost(zoom, config)
        cells = [zoom, meet]
        order = submission_order(
            cells, lambda cell: expected_cell_cost(cell, config)
        )
        assert order == [1, 0]


class TestImpairedCellCost:
    """Impairment is a planner input: its own cache key, scaled units."""

    def test_cell_key_back_compat(self):
        # Clean cells keep the historical two-part key so existing
        # calibration caches stay valid; impaired cells get their own.
        assert cell_key("zoom", "wifi_relay") == "zoom|wifi_relay"
        assert cell_key("zoom", "wifi_relay", "none") == "zoom|wifi_relay"
        assert cell_key("zoom", "wifi_relay", "lossy") == "zoom|wifi_relay|lossy"

    def test_static_cost_scales_with_volume_factor(self, tmp_path):
        from repro.netem import PROFILES

        cell = ("zoom", NetworkCondition.WIFI_RELAY, 0)

        def cost(impairment):
            config = ExperimentConfig(
                call_duration=10.0, media_scale=0.5, impairment=impairment,
                calibration_file=str(tmp_path / "calibration.json"),
            )
            return expected_cell_cost(cell, config)

        assert cost("none") == pytest.approx(5.0)
        for name in ("lossy", "burst", "rebind", "udp_blocked"):
            assert cost(name) == pytest.approx(
                5.0 * PROFILES[name].volume_factor()
            )
        # udp_blocked's explicit cost_scale halves the modeled work.
        assert cost("udp_blocked") == pytest.approx(2.5)

    def test_impaired_history_key_is_separate(self, tmp_path):
        path = tmp_path / "calibration.json"
        clean = ExperimentConfig(
            call_duration=10.0, media_scale=0.5, calibration_file=str(path)
        )
        impaired = dataclasses.replace(clean, impairment="rebind")
        cell = ("zoom", NetworkCondition.WIFI_RELAY, 0)
        store = costmodel.get_store(str(path))
        # Measured history for the *impaired* family only: the clean
        # cell must keep its static estimate, the impaired one must use
        # the measurement (1.0 s/unit x scaled units).
        store.calibration.observe_cell(
            cell_key("zoom", "wifi_relay", "rebind"), 5.0, 5.0
        )
        assert expected_cell_cost(cell, clean) == pytest.approx(5.0)
        from repro.netem import PROFILES

        units = 5.0 * PROFILES["rebind"].volume_factor()
        assert expected_cell_cost(cell, impaired) == pytest.approx(units)


class TestPoolFinalization:
    def test_pool_not_recreated_after_final_shutdown(self):
        try:
            shutdown_shared_pool(final=True)
            with pytest.raises(PoolClosedError):
                shared_pool(2)
            # Still closed on a second attempt — no silent re-creation.
            with pytest.raises(PoolClosedError):
                shared_pool(1)
            assert PoolClosedError in POOL_FALLBACK_ERRORS
        finally:
            reopen_shared_pool()

    def test_matrix_degrades_in_process_after_final_shutdown(self):
        from repro.experiments import run_matrix

        config = ExperimentConfig(call_duration=2.0, media_scale=0.2, seed=1)
        try:
            shutdown_shared_pool(final=True)
            result = run_matrix(
                apps=("zoom",),
                networks=(NetworkCondition.WIFI_RELAY,
                          NetworkCondition.CELLULAR),
                config=config,
                workers=2,
            )
            assert set(result.per_app) == {"zoom"}
            assert result.per_app["zoom"].summary is not None
        finally:
            reopen_shared_pool()


class TestProbeParity:
    """Probed runs must be bit-identical to the golden corpus, all 18 cells."""

    def test_probed_auto_cells_match_goldens(self, tmp_path):
        directory = default_corpus_dir()
        manifest = load_manifest(directory)
        cells = corpus_cells(manifest)
        assert len(cells) == 18
        base = experiment_config(CorpusConfig())
        for app, network in cells:
            # A fresh calibration file per cell forces the probe path on
            # every one of the 18 cells, not just the first.
            config = dataclasses.replace(
                base,
                plan="auto",
                calibration_file=str(
                    tmp_path / f"{cell_name(app, network)}.json"
                ),
            )
            run = run_cell_pipeline(app, network, config)
            assert run.plan is not None
            assert run.plan.probe is not None, "cold cache must probe"
            facts = build_facts(app, network, run.dpi, run.verdicts)
            golden = load_cell(directory, cell_name(app, network))
            for key in _VERDICT_KEYS:
                assert facts[key] == golden[key], (
                    f"probed {app}/{network.value} diverged on {key!r}"
                )


class TestCliFlags:
    def test_plan_flags_parse_with_defaults(self):
        parser = build_parser()
        for command in ("matrix", "report", "pipeline-stats"):
            args = parser.parse_args([command])
            assert args.plan == "fixed"
            assert args.calibration_file is None
            args = parser.parse_args(
                [command, "--plan", "auto", "--calibration-file", "cal.json"]
            )
            assert args.plan == "auto"
            assert args.calibration_file == "cal.json"

    def test_bad_plan_value_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--plan", "greedy"])
        capsys.readouterr()

    def test_pipeline_stats_auto_emits_rationale(self, tmp_path, capsys):
        code = cli_main([
            "pipeline-stats", "--app", "zoom", "--network", "wifi_relay",
            "--duration", "4", "--scale", "0.2",
            "--plan", "auto",
            "--calibration-file", str(tmp_path / "calibration.json"),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["plan"] == "auto"
        planner = payload["planner"]
        assert planner["mode"] == "auto"
        plans = [plan for plans in planner["per_app"].values() for plan in plans]
        assert plans, "auto mode must record a plan per cell"
        for plan in plans:
            assert plan["rationale"], "plan rationale must be non-empty"
            assert plan["mode"] == "auto"
        assert (tmp_path / "calibration.json").exists()

    def test_pipeline_stats_fixed_records_no_plans(self, capsys, tmp_path):
        code = cli_main([
            "pipeline-stats", "--app", "zoom", "--network", "wifi_relay",
            "--duration", "4", "--scale", "0.2",
            "--calibration-file", str(tmp_path / "calibration.json"),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["planner"]["mode"] == "fixed"
        assert all(
            plans == [] for plans in payload["planner"]["per_app"].values()
        )

    def test_pipeline_stats_auto_text_mode_prints_plan(self, tmp_path, capsys):
        code = cli_main([
            "pipeline-stats", "--app", "zoom", "--network", "wifi_relay",
            "--duration", "4", "--scale", "0.2",
            "--plan", "auto",
            "--calibration-file", str(tmp_path / "calibration.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: auto" in out
        assert "shard_workers=" in out
