"""Tests for the optional strict compound-order rule and attribute maxima."""

from repro.core import ComplianceChecker
from repro.core.stun_rules import StunSessionContext, check_stun
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.packets import (
    FeedbackPacket,
    ReceiverReport,
    SdesChunk,
    SdesItem,
    SdesPacket,
)
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import StunMessage


def rtcp_datagram(packets):
    payload = b"".join(p.build() for p in packets)
    record = PacketRecord(timestamp=1.0, src_ip="1.1.1.1", src_port=1,
                          dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                          payload=payload)
    messages = []
    offset = 0
    for packet in packets:
        raw = packet.build()
        messages.append(ExtractedMessage(
            protocol=Protocol.RTCP, offset=offset, length=len(raw),
            message=packet, record=record,
        ))
        offset += len(raw)
    return messages


class TestStrictCompound:
    def test_off_by_default(self):
        messages = rtcp_datagram([
            FeedbackPacket(packet_type=205, fmt=1, sender_ssrc=1,
                           media_ssrc=2).to_packet(),
        ])
        verdicts = ComplianceChecker().check(messages)
        assert verdicts[0].compliant

    def test_standalone_feedback_flagged_when_strict(self):
        messages = rtcp_datagram([
            FeedbackPacket(packet_type=205, fmt=1, sender_ssrc=1,
                           media_ssrc=2).to_packet(),
        ])
        verdicts = ComplianceChecker(strict_compound=True).check(messages)
        assert not verdicts[0].compliant
        assert verdicts[0].first_violation.code == "compound-must-start-with-report"

    def test_proper_compound_passes_strict(self):
        messages = rtcp_datagram([
            ReceiverReport(ssrc=1).to_packet(),
            SdesPacket(chunks=[SdesChunk(1, [SdesItem(1, b"c")])]).to_packet(),
        ])
        verdicts = ComplianceChecker(strict_compound=True).check(messages)
        assert all(v.compliant for v in verdicts)

    def test_only_head_is_judged(self):
        messages = rtcp_datagram([
            ReceiverReport(ssrc=1).to_packet(),
            FeedbackPacket(packet_type=206, fmt=1, sender_ssrc=1,
                           media_ssrc=2).to_packet(),
        ])
        verdicts = ComplianceChecker(strict_compound=True).check(messages)
        assert all(v.compliant for v in verdicts)


class TestAttributeMaxLengths:
    def _judge(self, attr):
        message = StunMessage(msg_type=0x0001, transaction_id=bytes(12),
                              attributes=[attr])
        raw = message.build()
        record = PacketRecord(timestamp=1.0, src_ip="1.1.1.1", src_port=1,
                              dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                              payload=raw)
        extracted = ExtractedMessage(protocol=Protocol.STUN_TURN, offset=0,
                                     length=len(raw), message=message,
                                     record=record)
        return check_stun(extracted, StunSessionContext([extracted]))

    def test_oversized_username_flagged(self):
        violations = self._judge(
            StunAttribute(int(AttributeType.USERNAME), b"u" * 514)
        )
        assert violations[0].code == "bad-attribute-length"

    def test_maximum_username_ok(self):
        assert self._judge(
            StunAttribute(int(AttributeType.USERNAME), b"u" * 513)
        ) == []

    def test_oversized_software_flagged(self):
        violations = self._judge(
            StunAttribute(int(AttributeType.SOFTWARE), b"s" * 800)
        )
        assert violations[0].code == "bad-attribute-length"
