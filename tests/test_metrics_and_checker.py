"""Tests for the compliance checker orchestration and the two metrics."""

from repro.core import ComplianceChecker, ComplianceSummary
from repro.core.metrics import (
    VolumeCompliance,
    merge_type_entries,
    message_type_metric,
    volume_metric,
)
from repro.core.verdict import Criterion, MessageVerdict, Violation
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import PacketRecord
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage


def extract(message, protocol, raw=None):
    if raw is None:
        raw = message.build()
    record = PacketRecord(
        timestamp=1.0, src_ip="1.1.1.1", src_port=1, dst_ip="2.2.2.2",
        dst_port=2, transport="UDP", payload=raw,
    )
    return ExtractedMessage(protocol=protocol, offset=0, length=len(raw),
                            message=message, record=record)


def rtp_message(pt=96, ext=None):
    return extract(
        RtpPacket(payload_type=pt, sequence_number=1, timestamp=2, ssrc=3,
                  payload=b"x", extension=ext),
        Protocol.RTP,
    )


def stun_message(msg_type=0x0001, attrs=()):
    return extract(
        StunMessage(msg_type=msg_type, transaction_id=bytes(12),
                    attributes=list(attrs)),
        Protocol.STUN_TURN,
    )


class TestChecker:
    def test_mixed_session(self):
        messages = [
            rtp_message(),
            stun_message(),
            stun_message(0x0800),  # undefined type
        ]
        verdicts = ComplianceChecker().check(messages)
        assert [v.compliant for v in verdicts] == [True, True, False]

    def test_check_one(self):
        verdict = ComplianceChecker().check_one(stun_message(0x0801))
        assert not verdict.compliant
        assert verdict.failed_criterion is Criterion.MESSAGE_TYPE

    def test_non_sequential_mode(self):
        message = stun_message(0x0800, [StunAttribute(0x4000, b"x")])
        verdicts = ComplianceChecker(sequential=False).check([message])
        assert len(verdicts[0].violations) == 2


class TestVolumeMetric:
    def _verdicts(self):
        return ComplianceChecker().check([
            rtp_message(), rtp_message(), stun_message(0x0800),
        ])

    def test_overall(self):
        volume = volume_metric(self._verdicts())
        assert (volume.compliant, volume.total) == (2, 3)
        assert abs(volume.ratio - 2 / 3) < 1e-9

    def test_per_protocol(self):
        verdicts = self._verdicts()
        assert volume_metric(verdicts, Protocol.RTP).ratio == 1.0
        assert volume_metric(verdicts, Protocol.STUN_TURN).ratio == 0.0

    def test_empty_is_fully_compliant(self):
        assert volume_metric([]).ratio == 1.0

    def test_addition(self):
        total = VolumeCompliance(1, 2) + VolumeCompliance(3, 4)
        assert (total.compliant, total.total) == (4, 6)


class TestTypeMetric:
    def test_type_compliant_only_if_all_instances_are(self):
        from repro.protocols.rtp.extensions import HeaderExtension
        verdicts = ComplianceChecker().check([
            rtp_message(pt=96),
            rtp_message(pt=96, ext=HeaderExtension(0x8001, bytes(4))),
            rtp_message(pt=97),
        ])
        entries = message_type_metric(verdicts)
        assert not entries[("rtp", "96")].compliant
        assert entries[("rtp", "96")].total == 2
        assert entries[("rtp", "97")].compliant

    def test_examples_recorded(self):
        verdicts = ComplianceChecker().check([stun_message(0x0800)])
        entries = message_type_metric(verdicts)
        entry = entries[("stun_turn", "0x0800")]
        assert entry.example_violations
        assert "undefined-message-type" in entry.example_violations[0]


class TestSummary:
    def _summary(self, app="test"):
        verdicts = ComplianceChecker().check([
            rtp_message(), stun_message(), stun_message(0x0800),
        ])
        return ComplianceSummary.from_verdicts(app, verdicts)

    def test_from_verdicts(self):
        summary = self._summary()
        assert summary.volume.total == 3
        assert summary.volume_by_protocol["rtp"].ratio == 1.0
        assert summary.type_ratio() == (2, 3)
        assert summary.type_ratio("stun_turn") == (1, 2)

    def test_observed_types(self):
        summary = self._summary()
        stun_types = summary.observed_types("stun_turn")
        assert set(stun_types) == {"0x0001", "0x0800"}

    def test_merge_type_entries_counts_per_app(self):
        a = self._summary("a")
        b = self._summary("b")
        compliant, total = merge_type_entries([a, b], "stun_turn")
        assert (compliant, total) == (2, 4)  # same types, counted per app


class TestVerdictModel:
    def test_violation_str(self):
        violation = Violation(Criterion.ATTRIBUTE_TYPES, "undefined-attribute", "x")
        assert str(violation).startswith("[C3:undefined-attribute]")

    def test_verdict_properties(self):
        verdict = MessageVerdict(message=None, violations=[])
        assert verdict.compliant
        assert verdict.first_violation is None
        assert verdict.failed_criterion is None
