"""Tests for the dataset builder and markdown report generator."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker, ComplianceSummary
from repro.dpi import DpiEngine
from repro.experiments import ExperimentConfig, run_experiment, run_matrix
from repro.experiments.dataset import (
    build_dataset,
    load_dataset,
    save_manifest,
    save_trace,
)
from repro.experiments.report import (
    aggregate_report,
    criteria_report,
    matrix_report,
    summary_report,
    violation_inventory,
)
from repro.filtering import TwoStageFilter


@pytest.fixture(scope="module")
def small_dataset(tmp_path_factory):
    root = tmp_path_factory.mktemp("dataset")
    return build_dataset(
        root,
        apps=("discord",),
        networks=(NetworkCondition.WIFI_RELAY,),
        call_duration=8.0,
        media_scale=0.25,
    )


class TestDataset:
    def test_build_creates_pcaps_and_manifest(self, small_dataset):
        assert (small_dataset.root / "manifest.json").exists()
        entry = small_dataset.entry("discord", "wifi_relay")
        assert (small_dataset.root / entry.pcap).exists()
        assert entry.packet_count > 100

    def test_reload_round_trip(self, small_dataset):
        reloaded = load_dataset(small_dataset.root)
        entry = reloaded.entry("discord", "wifi_relay")
        original = small_dataset.entry("discord", "wifi_relay")
        assert entry.packet_count == original.packet_count
        assert entry.window.call_start == original.window.call_start

    def test_labels_survive(self, small_dataset):
        reloaded = load_dataset(small_dataset.root)
        entry = reloaded.entry("discord", "wifi_relay")
        records = reloaded.load_records(entry)
        labelled = [r for r in records if r.truth is not None]
        assert len(labelled) > len(records) * 0.8
        assert any(r.truth.detail == "rtcp" for r in labelled)

    def test_analysis_from_disk_matches_in_memory(self, small_dataset):
        """The public-dataset consumer path: pcap -> filter -> DPI -> verdicts."""
        reloaded = load_dataset(small_dataset.root)
        entry = reloaded.entry("discord", "wifi_relay")
        records = reloaded.load_records(entry)
        kept = TwoStageFilter(entry.window).apply(records).kept_records
        verdicts = ComplianceChecker().check(DpiEngine().analyze_records(kept).messages())
        summary = ComplianceSummary.from_verdicts("discord", verdicts)
        assert summary.type_ratio() == (0, 9)  # Discord's signature row

    def test_missing_entry_raises(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.entry("zoom", "wifi_relay")

    def test_save_trace_standalone(self, tmp_path):
        trace = get_simulator("whatsapp").simulate(
            CallConfig(network=NetworkCondition.WIFI_P2P, seed=5,
                       call_duration=5.0, media_scale=0.2)
        )
        entry = save_trace(tmp_path, trace)
        assert entry.packet_count == len(trace.records)

    def test_corrupt_label_count_detected(self, small_dataset, tmp_path):
        import dataclasses
        reloaded = load_dataset(small_dataset.root)
        entry = reloaded.entry("discord", "wifi_relay")
        broken = dataclasses.replace(entry, labels=entry.labels[:5])
        with pytest.raises(ValueError):
            reloaded.load_records(broken)


@pytest.fixture(scope="module")
def aggregate():
    return run_experiment(
        "discord", NetworkCondition.WIFI_RELAY,
        ExperimentConfig(call_duration=8.0, media_scale=0.25),
    )


class TestReport:
    def test_summary_report_structure(self, aggregate):
        text = summary_report(aggregate.summary)
        assert "# Compliance report — discord" in text
        assert "Volume compliance" in text
        assert "**non-compliant**" in text
        assert "| rtcp | 200 |" in text

    def test_aggregate_report_sections(self, aggregate):
        text = aggregate_report(aggregate)
        assert "## Traffic filtering" in text
        assert "## Datagram classes" in text
        assert "stage-1 removed" in text

    def test_matrix_report(self):
        matrix = run_matrix(
            apps=("discord",),
            networks=(NetworkCondition.WIFI_RELAY,),
            config=ExperimentConfig(call_duration=6.0, media_scale=0.2),
        )
        text = matrix_report(matrix)
        assert "matrix report" in text
        assert "| discord |" in text

    def test_criteria_report(self, aggregate):
        verdicts = []  # build from a fresh run to get verdict objects
        trace = get_simulator("discord").simulate(
            CallConfig(network=NetworkCondition.WIFI_RELAY, seed=0,
                       call_duration=6.0, media_scale=0.2)
        )
        kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
        verdicts = ComplianceChecker().check(DpiEngine().analyze_records(kept).messages())
        inventory = violation_inventory(verdicts)
        assert any(inventory.values())
        text = criteria_report(verdicts)
        assert "Criterion 5" in text
        assert "undefined-trailing-bytes" in text
