"""Tests for the report/dataset/interop CLI subcommands."""

import json

from repro.cli import main


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--app", "discord", "--duration", "6",
                     "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "# Experiment report — discord" in out
        assert "Traffic filtering" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--app", "whatsapp", "--duration", "6",
                     "--scale", "0.2", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# Experiment report — whatsapp" in text
        assert "wrote report" in capsys.readouterr().out


class TestDatasetCommand:
    def test_dataset_build(self, tmp_path, capsys):
        root = tmp_path / "ds"
        assert main(["dataset", "--root", str(root), "--apps", "discord",
                     "--duration", "5", "--scale", "0.2"]) == 0
        manifest = json.loads((root / "manifest.json").read_text())
        assert len(manifest["entries"]) == 3  # one per network condition
        for entry in manifest["entries"]:
            assert (root / entry["pcap"]).exists()

    def test_dataset_reanalyzable(self, tmp_path):
        from repro.core import ComplianceChecker
        from repro.dpi import DpiEngine
        from repro.experiments.dataset import load_dataset
        from repro.filtering import TwoStageFilter

        root = tmp_path / "ds"
        main(["dataset", "--root", str(root), "--apps", "zoom",
              "--duration", "5", "--scale", "0.2"])
        dataset = load_dataset(root)
        entry = dataset.entry("zoom", "wifi_relay")
        records = dataset.load_records(entry)
        kept = TwoStageFilter(entry.window).apply(records).kept_records
        verdicts = ComplianceChecker().check(
            DpiEngine().analyze_records(kept).messages()
        )
        assert verdicts
