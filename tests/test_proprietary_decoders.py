"""Tests for the proprietary-header decoders and sequential-txid rule."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core.stun_rules import StunSessionContext, check_stun
from repro.core.verdict import Criterion
from repro.dpi import DpiEngine
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.dpi.proprietary import (
    FaceTimeHeader,
    MediaIdReport,
    ZoomSfuHeader,
    detect_zoom_media_ids,
    summarize_zoom_headers,
)
from repro.filtering import TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.protocols.stun.message import StunMessage


@pytest.fixture(scope="module")
def zoom_dpi():
    trace = get_simulator("zoom").simulate(
        CallConfig(network=NetworkCondition.CELLULAR, seed=4,
                   call_duration=12.0, media_scale=0.3)
    )
    kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
    return DpiEngine().analyze_records(kept)


class TestZoomHeader:
    def test_parse_fields(self):
        header = (
            bytes([0x04, 0x64]) + (0xAABBCCDD).to_bytes(4, "big")  # dir + media id
            + bytes(8)                                              # session tag
            + (17).to_bytes(2, "big")                               # seq
            + bytes([15, 0x00]) + (120).to_bytes(2, "big")          # media section
            + bytes(4)                                              # ts
        )
        parsed = ZoomSfuHeader.parse(header)
        assert parsed.media_id == 0xAABBCCDD
        assert parsed.sequence == 17
        assert parsed.media_type == 15
        assert not parsed.wrapped
        assert not parsed.to_server
        assert parsed.effective_type == 15

    def test_wrapper_nested_type(self):
        header = (
            bytes([0x01, 0x64]) + bytes(4) + bytes(8) + bytes(2)
            + bytes([7, 0x00]) + bytes(2) + bytes(4)        # wrapper section
            + bytes([16, 0x00]) + bytes(2) + bytes(4)       # nested media section
        )
        parsed = ZoomSfuHeader.parse(header)
        assert parsed.wrapped
        assert parsed.inner_type == 16
        assert parsed.effective_type == 16
        assert parsed.to_server

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            ZoomSfuHeader.parse(bytes([0xFF]) + bytes(23))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            ZoomSfuHeader.parse(bytes(10))

    def test_on_real_trace(self, zoom_dpi):
        summary = summarize_zoom_headers(zoom_dpi.analyses)
        assert summary.total > 500
        assert 0.01 < summary.wrapper_share < 0.2        # paper: 6.9%
        assert summary.direction_consistent               # 0x00/0x04 semantics
        assert 15 in summary.by_effective_type            # audio
        assert 16 in summary.by_effective_type            # video
        assert 33 in summary.by_effective_type            # RTCP

    def test_media_id_constant_per_stream(self, zoom_dpi):
        report = detect_zoom_media_ids(zoom_dpi.analyses)
        assert report.ids_per_stream
        assert report.constant_per_stream                 # §5.3 finding


class TestFaceTimeHeader:
    def test_parse_and_consistency(self):
        inner_len = 100
        header = b"\x60\x00" + (6 + inner_len).to_bytes(2, "big") + bytes(6)
        parsed = FaceTimeHeader.parse(header)
        assert parsed.consistent_with(100)
        assert not parsed.consistent_with(99)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            FaceTimeHeader.parse(b"\x61\x00" + bytes(10))

    def test_on_real_trace(self):
        trace = get_simulator("facetime").simulate(
            CallConfig(network=NetworkCondition.WIFI_RELAY, seed=4,
                       call_duration=10.0, media_scale=0.3)
        )
        kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
        dpi = DpiEngine().analyze_records(kept)
        checked = 0
        for analysis in dpi.analyses:
            header = analysis.proprietary_header
            if not header.startswith(b"\x60\x00"):
                continue
            parsed = FaceTimeHeader.parse(header)
            message_length = sum(
                m.length + len(m.trailer) for m in analysis.messages
            )
            assert parsed.consistent_with(message_length)
            checked += 1
        assert checked > 100


def extract_stun(message, t, stream_port=50000):
    raw = message.build()
    record = PacketRecord(timestamp=t, src_ip="10.0.0.1", src_port=stream_port,
                          dst_ip="20.0.0.2", dst_port=3478, transport="UDP",
                          payload=raw)
    return ExtractedMessage(protocol=Protocol.STUN_TURN, offset=0,
                            length=len(raw), message=message, record=record)


class TestSequentialTxidRule:
    def test_incrementing_txids_flagged(self):
        messages = [
            extract_stun(
                StunMessage(msg_type=0x0001,
                            transaction_id=(1000 + i).to_bytes(12, "big")),
                t=float(i),
            )
            for i in range(8)
        ]
        # Answer each so the retransmission rule stays quiet.
        messages += [
            extract_stun(
                StunMessage(msg_type=0x0101,
                            transaction_id=(1000 + i).to_bytes(12, "big")),
                t=float(i) + 0.1,
            )
            for i in range(8)
        ]
        context = StunSessionContext(messages)
        violations = check_stun(messages[3], context)
        assert violations[0].code == "sequential-transaction-id"
        assert violations[0].criterion is Criterion.HEADER_FIELDS

    def test_random_txids_not_flagged(self):
        import random
        rng = random.Random(1)
        messages = [
            extract_stun(
                StunMessage(msg_type=0x0001,
                            transaction_id=bytes(rng.randrange(256)
                                                 for _ in range(12))),
                t=float(i),
            )
            for i in range(20)
        ]
        context = StunSessionContext(messages)
        assert not context.sequential_txids

    def test_short_run_not_flagged(self):
        messages = [
            extract_stun(
                StunMessage(msg_type=0x0001,
                            transaction_id=(500 + i).to_bytes(12, "big")),
                t=float(i),
            )
            for i in range(3)
        ]
        context = StunSessionContext(messages)
        assert not context.sequential_txids

    def test_simulated_apps_unaffected(self, pipeline_cache):
        """No simulator emits sequential IDs; the rule must stay silent."""
        from repro.apps import NetworkCondition
        for app in ("whatsapp", "messenger", "meet"):
            _t, _f, _d, verdicts = pipeline_cache(app, NetworkCondition.WIFI_RELAY)
            assert not any(
                v.first_violation and v.first_violation.code == "sequential-transaction-id"
                for v in verdicts
            )
