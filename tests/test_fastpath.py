"""Flow-sticky fast-path tests: bit-identical output and learner behavior.

The fast path is a pure optimization — ``analyze_stream`` must produce the
same messages, classifications, and proprietary headers whether it sweeps
every datagram or predicts from a learned signature.  The parity tests
here fingerprint both modes over every app x network cell and over a
hand-built framing-switch stream; the unit tests pin the learner's
trust/liveness/reset semantics.
"""

from __future__ import annotations

import pytest

from repro.apps import APP_NAMES, NetworkCondition
from repro.dpi import (
    DEFAULT_SIGNATURE_K,
    DpiEngine,
    SignatureLearner,
    StreamSignature,
)
from repro.dpi.candidates import rtp_candidates
from repro.dpi.fastpath import MAX_LIVE_SEQ_STEP, predicted_rtp_candidates
from repro.filtering import TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.protocols.rtcp.packets import SenderReport
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage


def udp(t, payload, sport=50000, dport=3478):
    return PacketRecord(
        timestamp=t, src_ip="10.0.0.1", src_port=sport,
        dst_ip="20.0.0.2", dst_port=dport, transport="UDP", payload=payload,
    )


def fingerprint(result):
    """Everything observable about an analysis, in a comparable shape."""
    return [
        (
            analysis.record.timestamp,
            analysis.classification.value,
            bytes(analysis.proprietary_header or b""),
            tuple(
                (m.protocol.value, m.offset, m.length, m.trailer,
                 type(m.message).__name__)
                for m in analysis.messages
            ),
        )
        for analysis in result.analyses
    ]


def rtp_record(t, ssrc, seq, prefix=b"", payload_len=40, pt=96):
    packet = RtpPacket(payload_type=pt, sequence_number=seq,
                       timestamp=1000 + 160 * seq, ssrc=ssrc,
                       payload=bytes(payload_len))
    return udp(t, prefix + packet.build())


class TestCellParity:
    """Fast path on vs off over every simulated app x network cell."""

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_bit_identical_per_app(self, app, trace_cache):
        for network in NetworkCondition:
            trace = trace_cache(app, network)
            kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
            fast = DpiEngine(fastpath=True).analyze_records(kept)
            slow = DpiEngine(fastpath=False).analyze_records(kept)
            assert fingerprint(fast) == fingerprint(slow), (
                f"fast-path output diverged for {app}/{network.value}"
            )
            assert slow.stats.fastpath_hits == 0
            assert fast.stats.datagrams == slow.stats.datagrams

    def test_fast_path_actually_engages(self, trace_cache):
        trace = trace_cache("whatsapp", NetworkCondition.WIFI_P2P)
        kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
        stats = DpiEngine(fastpath=True).analyze_records(kept).stats
        assert stats.fastpath_hits > 0
        assert (stats.cache_hits + stats.fastpath_hits + stats.sweeps
                == stats.datagrams)


class TestFramingSwitch:
    """One stream that changes framing twice: STUN, then RTP behind a
    proprietary header, then RTCP compound.  The learner locks on the RTP
    phase and must yield cleanly when the framing moves on."""

    def _records(self):
        records = []
        t = 1.0
        for i in range(6):
            message = StunMessage(msg_type=0x0001,
                                  transaction_id=bytes([i] * 12),
                                  attributes=[StunAttribute(0x8022, b"probe")])
            records.append(udp(t, message.build()))
            t += 0.02
        for seq in range(100, 140):
            records.append(
                rtp_record(t, ssrc=0xABCD, seq=seq, prefix=b"\x04\x64" + bytes(6))
            )
            t += 0.02
        sr = SenderReport(ssrc=0xABCD, ntp_timestamp=2**40, rtp_timestamp=7,
                          packet_count=40, octet_count=4000)
        for i in range(4):
            records.append(udp(t, sr.to_packet().build()))
            t += 0.05
        return records

    def test_bit_identical_and_falls_back(self):
        records = self._records()
        fast_engine = DpiEngine(fastpath=True)
        fast = fast_engine.analyze_records(records)
        slow = DpiEngine(fastpath=False).analyze_records(records)
        assert fingerprint(fast) == fingerprint(slow)
        # The RTP phase is long enough to lock; the RTCP tail must not be
        # swallowed by the locked signature.
        assert fast.stats.fastpath_hits > 0
        rtcp = [a for a in fast.analyses
                if any(m.protocol.value == "rtcp" for m in a.messages)]
        assert len(rtcp) == 4

    def test_accounting_invariant(self):
        records = self._records()
        stats = DpiEngine(fastpath=True).analyze_records(records).stats
        assert stats.fastpath_redos == 0
        assert (stats.cache_hits + stats.fastpath_hits + stats.sweeps
                == stats.datagrams)
        # Every fallback also swept.
        assert stats.sweeps >= stats.fastpath_fallbacks


class TestSignatureLearner:
    def _observe_stream(self, learner, ssrc=0x1111, offset=0, count=None,
                        start_seq=50):
        count = learner.k if count is None else count
        for i in range(count):
            payload = RtpPacket(payload_type=96, sequence_number=start_seq + i,
                                timestamp=160 * i, ssrc=ssrc,
                                payload=bytes(20)).build()
            candidates = rtp_candidates(bytes(offset) + payload, 200)
            learner.observe([c for c in candidates if c.offset == offset])

    def test_locks_after_k_live_sightings(self):
        learner = SignatureLearner()
        self._observe_stream(learner, count=DEFAULT_SIGNATURE_K - 1)
        assert not learner.locked
        self._observe_stream(learner, count=1,
                             start_seq=50 + DEFAULT_SIGNATURE_K - 1)
        assert learner.locked
        assert learner.signature.rtp_offsets == (0,)
        assert learner.signature.ssrcs_at(0) == frozenset({0x1111})

    def test_static_pair_never_locks(self):
        # Byte-stable artifact: same SSRC recurs but its "seq" field jumps
        # wildly (it overlaps a real timestamp) — not live media.
        learner = SignatureLearner()
        for i in range(learner.k * 3):
            payload = RtpPacket(payload_type=96,
                                sequence_number=(i * 7919) % 65536,
                                timestamp=0, ssrc=0xBEDE0001,
                                payload=bytes(20)).build()
            learner.observe(rtp_candidates(payload, 200))
        assert not learner.locked

    def test_seq_step_boundary(self):
        # A delta of exactly MAX_LIVE_SEQ_STEP is live; one beyond is not.
        for step, locks in ((MAX_LIVE_SEQ_STEP, True),
                            (MAX_LIVE_SEQ_STEP + 1, False)):
            learner = SignatureLearner()
            for i in range(learner.k):
                payload = RtpPacket(payload_type=96,
                                    sequence_number=(i * step) % 65536,
                                    timestamp=0, ssrc=0x2222,
                                    payload=bytes(20)).build()
                learner.observe(rtp_candidates(payload, 200))
            assert learner.locked is locks

    def test_k_misses_reset(self):
        learner = SignatureLearner()
        self._observe_stream(learner)
        assert learner.locked
        for _ in range(learner.k - 1):
            learner.record_miss()
        assert learner.locked
        learner.record_miss()
        assert not learner.locked

    def test_hit_clears_miss_streak(self):
        learner = SignatureLearner()
        self._observe_stream(learner)
        for _ in range(learner.k - 1):
            learner.record_miss()
        learner.record_hit()
        for _ in range(learner.k - 1):
            learner.record_miss()
        assert learner.locked

    def test_ssrc_rotation_extends_signature(self):
        learner = SignatureLearner()
        self._observe_stream(learner, ssrc=0x1111)
        self._observe_stream(learner, ssrc=0x2222, start_seq=500)
        assert learner.signature.ssrcs_at(0) == frozenset({0x1111, 0x2222})

    def test_guards_survive_reset(self):
        learner = SignatureLearner()
        self._observe_stream(learner, ssrc=0x55667788)
        for _ in range(learner.k):
            learner.record_miss()
        assert not learner.locked
        # Relearn at a different offset; the old SSRC at offset 0 must
        # still trip the continuation guard.
        self._observe_stream(learner, ssrc=0x99AABBCC, offset=8)
        payload = RtpPacket(payload_type=96, sequence_number=1, timestamp=2,
                            ssrc=0x55667788, payload=bytes(20)).build()
        assert learner.continuation_risk(payload, 200)

    def test_continuation_risk_ignores_learned_offset(self):
        learner = SignatureLearner()
        self._observe_stream(learner, ssrc=0x55667788)
        payload = RtpPacket(payload_type=96, sequence_number=60,
                            timestamp=100, ssrc=0x55667788,
                            payload=bytes(20)).build()
        assert not learner.continuation_risk(payload, 200)
        assert learner.continuation_risk(b"\x00" * 4 + payload, 200)

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            SignatureLearner(k=1)


class TestPredictedCandidates:
    def _signature(self, offset=0, ssrc=0x1111, dynamic=True):
        live = frozenset({ssrc}) if dynamic else frozenset()
        return StreamSignature(
            rtp_offsets=(offset,),
            rtp_ssrc_sets=(frozenset({ssrc}),),
            rtp_dynamic_sets=(live,),
        )

    def _payload(self, ssrc=0x1111, prefix=b""):
        return prefix + RtpPacket(payload_type=96, sequence_number=9,
                                  timestamp=10, ssrc=ssrc,
                                  payload=bytes(20)).build()

    def test_trusted_live_prediction(self):
        out = predicted_rtp_candidates(
            self._payload(), 200, self._signature(), rtp_candidates
        )
        assert out is not None and out[0].rtp_ssrc == 0x1111

    def test_untrusted_ssrc_misses(self):
        out = predicted_rtp_candidates(
            self._payload(ssrc=0x9999), 200, self._signature(), rtp_candidates
        )
        assert out is None

    def test_static_only_signature_misses(self):
        out = predicted_rtp_candidates(
            self._payload(), 200, self._signature(dynamic=False), rtp_candidates
        )
        assert out is None

    def test_nothing_at_learned_offset_misses(self):
        # No candidate at all is a miss (the datagram deviates entirely).
        out = predicted_rtp_candidates(
            b"\x11" * 40, 200, self._signature(), rtp_candidates
        )
        assert out is None
