"""Tests for QUIC varints and v1 header parsing."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.quic.header import (
    QUIC_V1,
    LongHeaderType,
    QuicParseError,
    looks_like_quic,
    parse_datagram,
    parse_one,
)
from repro.protocols.quic.varint import decode_varint, encode_varint
from repro.utils.bytesview import TruncatedError


class TestVarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (63, b"\x3f"),
        (64, b"\x40\x40"),
        (15293, b"\x7b\xbd"),       # RFC 9000 appendix A example
        (494878333, b"\x9d\x7f\x3e\x7d"),
        (151288809941952652, b"\xc2\x19\x7c\x5e\xff\x14\xe8\x8c"),
    ])
    def test_rfc_examples(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(encoded) == (value, len(encoded))

    def test_decode_at_offset(self):
        assert decode_varint(b"\xff\x3f", offset=1) == (63, 1)

    def test_truncated_raises(self):
        with pytest.raises(TruncatedError):
            decode_varint(b"\x40")
        with pytest.raises(TruncatedError):
            decode_varint(b"")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(1 << 62)

    @given(st.integers(0, (1 << 62) - 1))
    def test_property_round_trip(self, value):
        encoded = encode_varint(value)
        assert decode_varint(encoded) == (value, len(encoded))


def initial_packet(dcid=b"\x01" * 8, scid=b"\x02" * 8, token=b"", payload_len=40):
    out = bytes([0xC1]) + struct.pack("!I", QUIC_V1)
    out += bytes([len(dcid)]) + dcid + bytes([len(scid)]) + scid
    out += encode_varint(len(token)) + token
    out += encode_varint(payload_len) + bytes(payload_len)
    return out


def handshake_packet(dcid=b"\x01" * 8, scid=b"\x02" * 8, payload_len=30):
    out = bytes([0xE1]) + struct.pack("!I", QUIC_V1)
    out += bytes([len(dcid)]) + dcid + bytes([len(scid)]) + scid
    out += encode_varint(payload_len) + bytes(payload_len)
    return out


class TestLongHeaders:
    def test_initial(self):
        header = parse_one(initial_packet(token=b"tok"))
        assert header.is_long
        assert header.long_type is LongHeaderType.INITIAL
        assert header.token == b"tok"
        assert header.dcid == b"\x01" * 8
        assert header.scid == b"\x02" * 8
        assert header.payload_length == 40

    def test_handshake(self):
        header = parse_one(handshake_packet())
        assert header.long_type is LongHeaderType.HANDSHAKE

    def test_zero_rtt(self):
        raw = bytearray(handshake_packet())
        raw[0] = 0xD1
        assert parse_one(bytes(raw)).long_type is LongHeaderType.ZERO_RTT

    def test_retry(self):
        out = bytes([0xF0]) + struct.pack("!I", QUIC_V1)
        out += bytes([4]) + b"\x01" * 4 + bytes([4]) + b"\x02" * 4
        out += b"retry-token-bytes" + bytes(16)
        header = parse_one(out)
        assert header.long_type is LongHeaderType.RETRY
        assert header.token == b"retry-token-bytes"

    def test_version_negotiation(self):
        out = bytes([0x80]) + struct.pack("!I", 0)
        out += bytes([8]) + b"\x01" * 8 + bytes([8]) + b"\x02" * 8
        out += struct.pack("!I", QUIC_V1)
        header = parse_one(out)
        assert header.is_version_negotiation

    def test_empty_vn_list_rejected(self):
        out = bytes([0x80]) + struct.pack("!I", 0)
        out += bytes([8]) + b"\x01" * 8 + bytes([8]) + b"\x02" * 8
        with pytest.raises(QuicParseError):
            parse_one(out)

    def test_fixed_bit_clear_rejected(self):
        raw = bytearray(initial_packet())
        raw[0] = 0x80 | 0x01  # form bit set, fixed bit clear
        with pytest.raises(QuicParseError):
            parse_one(bytes(raw))

    def test_oversized_cid_rejected(self):
        out = bytes([0xC1]) + struct.pack("!I", QUIC_V1) + bytes([21]) + bytes(21)
        with pytest.raises(QuicParseError):
            parse_one(out + bytes(10))

    def test_length_overrun_rejected(self):
        raw = initial_packet(payload_len=40)[:-20]
        with pytest.raises(QuicParseError):
            parse_one(raw)

    def test_unknown_version_not_quic(self):
        raw = bytearray(initial_packet())
        raw[1:5] = struct.pack("!I", 0x12345678)
        assert not looks_like_quic(bytes(raw))


class TestShortHeader:
    def test_parse_with_known_dcid_len(self):
        raw = bytes([0x41]) + b"\x09" * 8 + bytes(30)
        header = parse_one(raw, short_dcid_len=8)
        assert not header.is_long
        assert header.dcid == b"\x09" * 8
        assert header.wire_length == len(raw)

    def test_tiny_short_packet_rejected(self):
        with pytest.raises(QuicParseError):
            parse_one(bytes([0x41]) + bytes(8), short_dcid_len=8)

    def test_fixed_bit_clear_rejected(self):
        with pytest.raises(QuicParseError):
            parse_one(bytes([0x01]) + bytes(40), short_dcid_len=8)


class TestCoalesced:
    def test_two_long_packets(self):
        raw = initial_packet(payload_len=20) + handshake_packet(payload_len=25)
        headers = parse_datagram(raw)
        assert [h.long_type for h in headers] == [
            LongHeaderType.INITIAL, LongHeaderType.HANDSHAKE,
        ]

    def test_long_then_short(self):
        raw = handshake_packet(payload_len=20) + bytes([0x41]) + b"\x01" * 8 + bytes(30)
        headers = parse_datagram(raw, short_dcid_len=8)
        assert headers[0].is_long
        assert not headers[1].is_long

    def test_wire_lengths_partition_datagram(self):
        raw = initial_packet(payload_len=20) + handshake_packet(payload_len=25)
        headers = parse_datagram(raw)
        assert sum(h.wire_length for h in headers) == len(raw)
