"""Tests for the application-fingerprinting classifier."""

import pytest

from repro.analysis.classifier import classify_application
from repro.apps import APP_NAMES, NetworkCondition


class TestClassifier:
    @pytest.mark.parametrize("app", APP_NAMES)
    @pytest.mark.parametrize("network", list(NetworkCondition))
    def test_identifies_every_matrix_cell(self, app, network, pipeline_cache):
        _trace, _filter, dpi, _verdicts = pipeline_cache(app, network)
        scores = classify_application(dpi.analyses)
        assert scores.best == app, (
            f"{app}/{network.value} classified as {scores.best}: {scores.scores}"
        )

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_confident_on_relay_traffic(self, app, pipeline_cache):
        _trace, _filter, dpi, _verdicts = pipeline_cache(
            app, NetworkCondition.WIFI_RELAY
        )
        scores = classify_application(dpi.analyses)
        assert scores.confident, scores.scores

    def test_evidence_recorded(self, pipeline_cache):
        _trace, _filter, dpi, _verdicts = pipeline_cache(
            "zoom", NetworkCondition.WIFI_RELAY
        )
        scores = classify_application(dpi.analyses)
        assert scores.evidence["zoom"]
        assert any("header" in reason for reason in scores.evidence["zoom"])

    def test_empty_trace_is_unclassified(self):
        scores = classify_application([])
        assert scores.best is None
        assert not scores.confident

    def test_generic_standard_traffic_unclassified(self):
        """Fully standards-compliant traffic carries no fingerprint."""
        from repro.dpi import DpiEngine
        from repro.packets.packet import PacketRecord
        from repro.protocols.rtp.header import RtpPacket

        records = [
            PacketRecord(
                timestamp=float(i), src_ip="1.1.1.1", src_port=1,
                dst_ip="2.2.2.2", dst_port=2, transport="UDP",
                payload=RtpPacket(payload_type=96, sequence_number=i,
                                  timestamp=i * 160, ssrc=0x42,
                                  payload=bytes(60)).build(),
            )
            for i in range(30)
        ]
        result = DpiEngine().analyze_records(records)
        scores = classify_application(result.analyses)
        assert not scores.confident
