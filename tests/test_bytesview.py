"""Unit and property tests for the ByteReader/ByteWriter primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bytesview import ByteReader, ByteWriter, TruncatedError


class TestByteReader:
    def test_read_sequential(self):
        reader = ByteReader(b"abcdef")
        assert reader.read(2) == b"ab"
        assert reader.read(3) == b"cde"
        assert reader.remaining == 1

    def test_read_past_end_raises(self):
        reader = ByteReader(b"ab")
        with pytest.raises(TruncatedError):
            reader.read(3)

    def test_read_negative_raises(self):
        with pytest.raises(ValueError):
            ByteReader(b"ab").read(-1)

    def test_peek_does_not_advance(self):
        reader = ByteReader(b"abcd")
        assert reader.peek(2) == b"ab"
        assert reader.pos == 0
        assert reader.read(2) == b"ab"

    def test_skip(self):
        reader = ByteReader(b"abcd")
        reader.skip(3)
        assert reader.read(1) == b"d"

    def test_u8_u16_u24_u32_u64(self):
        data = bytes([0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                      0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C,
                      0x0D, 0x0E, 0x0F, 0x10, 0x11, 0x12])
        reader = ByteReader(data)
        assert reader.u8() == 0x01
        assert reader.u16() == 0x0203
        assert reader.u24() == 0x040506
        assert reader.u32() == 0x0708090A
        assert reader.u64() == 0x0B0C0D0E0F101112

    def test_rest(self):
        reader = ByteReader(b"abcdef")
        reader.skip(4)
        assert reader.rest() == b"ef"
        assert reader.at_end()

    def test_subreader_window(self):
        reader = ByteReader(b"abcdef")
        sub = reader.subreader(3)
        assert sub.rest() == b"abc"
        assert reader.read(3) == b"def"

    def test_subreader_bounds(self):
        reader = ByteReader(b"ab")
        with pytest.raises(TruncatedError):
            reader.subreader(5)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ByteReader(b"abc", start=2, end=1)

    def test_truncated_error_is_value_error(self):
        assert issubclass(TruncatedError, ValueError)


class TestByteWriter:
    def test_lengths_tracked(self):
        writer = ByteWriter()
        writer.u8(1).u16(2).u32(3)
        assert len(writer) == 7
        assert len(writer.getvalue()) == 7

    def test_pad_to_multiple(self):
        writer = ByteWriter()
        writer.write(b"abc")
        writer.pad_to_multiple(4)
        assert writer.getvalue() == b"abc\x00"

    def test_pad_already_aligned(self):
        writer = ByteWriter()
        writer.write(b"abcd")
        writer.pad_to_multiple(4)
        assert writer.getvalue() == b"abcd"

    def test_pad_custom_fill(self):
        writer = ByteWriter()
        writer.u8(0xFF)
        writer.pad_to_multiple(4, fill=0xAA)
        assert writer.getvalue() == b"\xff\xaa\xaa\xaa"

    def test_values_masked(self):
        writer = ByteWriter()
        writer.u8(0x1FF)
        assert writer.getvalue() == b"\xff"


class TestRoundTrips:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_u16_round_trip(self, value):
        raw = ByteWriter().u16(value).getvalue()
        assert ByteReader(raw).u16() == value

    @given(st.integers(min_value=0, max_value=0xFFFFFF))
    def test_u24_round_trip(self, value):
        raw = ByteWriter().u24(value).getvalue()
        assert ByteReader(raw).u24() == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_round_trip(self, value):
        raw = ByteWriter().u32(value).getvalue()
        assert ByteReader(raw).u32() == value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_u64_round_trip(self, value):
        raw = ByteWriter().u64(value).getvalue()
        assert ByteReader(raw).u64() == value

    @given(st.lists(st.binary(max_size=20), max_size=10))
    def test_write_concatenates(self, chunks):
        writer = ByteWriter()
        for chunk in chunks:
            writer.write(chunk)
        assert writer.getvalue() == b"".join(chunks)
