"""Tests for the codec traffic models."""

import pytest

from repro.apps.codec import (
    MediaPacket,
    OpusTalkspurtModel,
    VideoGopModel,
    schedule_to_rtp,
)
from repro.utils.rand import DeterministicRandom


class TestOpusModel:
    def _schedule(self, seed=1, duration=30.0):
        return OpusTalkspurtModel(DeterministicRandom(seed)).schedule(duration)

    def test_deterministic(self):
        assert self._schedule(seed=5) == self._schedule(seed=5)

    def test_offsets_monotonic_and_bounded(self):
        schedule = self._schedule()
        offsets = [p.offset for p in schedule]
        assert offsets == sorted(offsets)
        assert offsets[0] >= 0.0
        assert offsets[-1] < 30.0

    def test_contains_talk_and_dtx(self):
        schedule = self._schedule()
        dtx = [p for p in schedule if p.size == 8]
        talk = [p for p in schedule if p.size >= 60]
        assert dtx and talk

    def test_markers_start_talkspurts(self):
        schedule = self._schedule()
        markers = [p for p in schedule if p.marker]
        assert markers
        # A marker frame is always a voice frame, never DTX.
        assert all(p.size >= 60 for p in markers)

    def test_rate_below_continuous_voice(self):
        schedule = self._schedule(duration=60.0)
        # Continuous 20 ms voice would be 3000 packets; DTX must save a lot.
        assert 800 < len(schedule) < 2800


class TestVideoGopModel:
    def _schedule(self, seed=1, duration=10.0, **kwargs):
        return VideoGopModel(DeterministicRandom(seed), **kwargs).schedule(duration)

    def test_deterministic(self):
        assert self._schedule(seed=3) == self._schedule(seed=3)

    def test_keyframes_fragment_into_bursts(self):
        schedule = self._schedule()
        by_offset = {}
        for packet in schedule:
            by_offset.setdefault(packet.offset, []).append(packet)
        fragments = sorted(len(v) for v in by_offset.values())
        assert fragments[-1] > fragments[0]  # keyframes span more packets

    def test_marker_ends_each_frame(self):
        schedule = self._schedule()
        by_offset = {}
        for packet in schedule:
            by_offset.setdefault(packet.offset, []).append(packet)
        for frame in by_offset.values():
            assert frame[-1].marker
            assert all(not p.marker for p in frame[:-1])

    def test_bitrate_near_target(self):
        target = 800_000
        schedule = self._schedule(duration=20.0, target_bps=target)
        total_bits = 8 * sum(p.size for p in schedule)
        measured = total_bits / 20.0
        assert 0.5 * target < measured < 1.6 * target

    def test_mtu_respected(self):
        schedule = self._schedule(mtu_payload=900)
        assert max(p.size for p in schedule) <= 900


class TestScheduleToRtp:
    def test_valid_rtp_with_shared_frame_timestamps(self):
        from repro.protocols.rtp.header import RtpPacket
        rng = DeterministicRandom(2)
        schedule = VideoGopModel(rng).schedule(2.0)
        wire = schedule_to_rtp(schedule, ssrc=0x77, payload_type=96,
                               clock_rate=90000, rng=rng)
        assert len(wire) == len(schedule)
        parsed = [RtpPacket.parse(raw) for _t, raw in wire]
        # Sequence numbers are consecutive mod 2^16.
        for a, b in zip(parsed, parsed[1:]):
            assert (b.sequence_number - a.sequence_number) & 0xFFFF == 1
        # Packets of one frame share the RTP timestamp.
        by_offset = {}
        for (t, _), packet in zip(wire, parsed):
            by_offset.setdefault(t, set()).add(packet.timestamp)
        assert all(len(ts) == 1 for ts in by_offset.values())

    def test_pipeline_accepts_codec_traffic(self):
        """Model output survives DPI + compliance + quality analytics."""
        from repro.analysis import analyze_rtp_quality
        from repro.core import ComplianceChecker
        from repro.dpi import DpiEngine
        from repro.packets.packet import PacketRecord

        rng = DeterministicRandom(9)
        schedule = OpusTalkspurtModel(rng).schedule(10.0)
        wire = schedule_to_rtp(schedule, ssrc=0xAA, payload_type=111,
                               clock_rate=48000, rng=rng)
        records = [
            PacketRecord(timestamp=t, src_ip="10.0.0.1", src_port=5002,
                         dst_ip="20.0.0.2", dst_port=5004, transport="UDP",
                         payload=raw)
            for t, raw in wire
        ]
        result = DpiEngine().analyze_records(records)
        assert len(result.messages()) == len(records)
        verdicts = ComplianceChecker().check(result.messages())
        assert all(v.compliant for v in verdicts)
        quality = list(analyze_rtp_quality(result.messages(),
                                           clock_rate=48000).values())[0]
        assert quality.lost == 0
