"""Flow-sharded parallel streaming: determinism, fallbacks, CLI, scheduler.

The sharded executor's whole contract is bit-identical output to the
single-process streaming pipeline for every shard count, worker count,
and failure-induced fallback.  These tests pin that contract, plus the
supporting pieces: the stable flow-shard hash, chunked stage execution,
the shared process pool's scheduling helpers, and the CLI flags.
"""

from functools import partial

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.experiments import (
    ExperimentConfig,
    expected_cell_cost,
    plan_shard_workers,
    submission_order,
)
from repro.experiments.runner import run_cell_pipeline
from repro.filtering import TwoStageFilter
from repro.pipeline import (
    DEFAULT_CHUNK_SIZE,
    flow_shard,
    run_cell_sharded,
    run_streaming,
    run_streaming_sharded,
)


@pytest.fixture(scope="module")
def kept_records():
    trace = get_simulator("zoom").simulate(
        CallConfig(network=NetworkCondition.WIFI_RELAY, seed=1,
                   call_duration=6.0, media_scale=0.3)
    )
    return TwoStageFilter(trace.window).apply(trace.records).kept_records


@pytest.fixture(scope="module")
def raw_trace():
    return get_simulator("meet").simulate(
        CallConfig(network=NetworkCondition.CELLULAR, seed=2,
                   call_duration=6.0, media_scale=0.3)
    )


def _verdict_fingerprint(verdicts):
    return [
        (verdict.message.protocol.value, verdict.message.offset,
         verdict.compliant,
         tuple((v.criterion, v.code) for v in verdict.violations))
        for verdict in verdicts
    ]


def _analysis_fingerprint(dpi):
    return [
        (analysis.record.timestamp, analysis.classification.value,
         tuple((m.protocol.value, m.offset, m.length)
               for m in analysis.messages))
        for analysis in dpi.analyses
    ]


class TestFlowShard:
    def test_stable_across_processes(self):
        # blake2b of the canonical flow token — must never depend on
        # PYTHONHASHSEED, or shard assignment would differ per process.
        key = (("10.0.0.1", 5000), ("10.0.0.2", 6000), "UDP")
        assert flow_shard(key, 1) == 0
        assert flow_shard(key, 4) == flow_shard(key, 4)

    def test_range_and_distribution(self):
        seen = set()
        for port in range(200):
            key = (("10.0.0.1", port), ("10.0.0.2", 6000), "UDP")
            shard = flow_shard(key, 4)
            assert 0 <= shard < 4
            seen.add(shard)
        assert seen == {0, 1, 2, 3}

    def test_rejects_nonpositive_shards(self):
        key = (("10.0.0.1", 1), ("10.0.0.2", 2), "UDP")
        with pytest.raises(ValueError):
            flow_shard(key, 0)


class TestShardInvariance:
    def test_streaming_bit_identical_across_shard_counts(self, kept_records):
        single_dpi, single_verdicts, single_stats = run_streaming(
            kept_records, DpiEngine(), ComplianceChecker()
        )
        for shards in (1, 2, 4):
            dpi, verdicts, stats = run_streaming_sharded(
                kept_records, engine_factory=partial(DpiEngine),
                shards=shards, workers=0,
            )
            assert _analysis_fingerprint(dpi) == _analysis_fingerprint(single_dpi)
            assert _verdict_fingerprint(verdicts) == _verdict_fingerprint(
                single_verdicts
            )
            assert dpi.stats.datagrams == single_dpi.stats.datagrams
            # Merged stage stats conserve record flow regardless of shards.
            by_name = {stat.name: stat for stat in stats}
            single_by_name = {stat.name: stat for stat in single_stats}
            assert set(by_name) == set(single_by_name)
            for name, stat in by_name.items():
                assert stat.records_in == single_by_name[name].records_in
                assert stat.records_out == single_by_name[name].records_out

    def test_pool_path_matches_in_process(self, kept_records):
        reference = run_streaming_sharded(
            kept_records, engine_factory=partial(DpiEngine),
            shards=2, workers=0,
        )
        pooled = run_streaming_sharded(
            kept_records, engine_factory=partial(DpiEngine),
            shards=2, workers=2,
        )
        assert _analysis_fingerprint(pooled[0]) == _analysis_fingerprint(
            reference[0]
        )
        assert _verdict_fingerprint(pooled[1]) == _verdict_fingerprint(
            reference[1]
        )

    def test_unpicklable_factory_falls_back_in_process(self, kept_records):
        # A lambda cannot cross a process boundary; the executor must
        # degrade to in-process shards and still produce identical output.
        reference = run_streaming_sharded(
            kept_records, engine_factory=partial(DpiEngine),
            shards=2, workers=0,
        )
        fallback = run_streaming_sharded(
            kept_records, engine_factory=lambda: DpiEngine(),
            shards=2, workers=2,
        )
        assert _verdict_fingerprint(fallback[1]) == _verdict_fingerprint(
            reference[1]
        )
        assert fallback[0].stats.datagrams == reference[0].stats.datagrams

    def test_empty_capture(self):
        dpi, verdicts, stats = run_streaming_sharded(
            [], engine_factory=partial(DpiEngine), shards=4, workers=0
        )
        assert dpi.analyses == [] and verdicts == []

    def test_rejects_bad_shards(self, kept_records):
        with pytest.raises(ValueError):
            run_streaming_sharded(
                kept_records, engine_factory=partial(DpiEngine), shards=0
            )


class TestCellSharding:
    def test_cell_sharded_matches_unsharded(self, raw_trace):
        filter_ = TwoStageFilter(raw_trace.window)
        reference_filter = filter_.apply(raw_trace.records)
        reference_dpi, reference_verdicts, _ = run_streaming(
            reference_filter.kept_records, DpiEngine(), ComplianceChecker()
        )
        for shards in (2, 4):
            run = run_cell_sharded(
                raw_trace.records, TwoStageFilter(raw_trace.window),
                engine_factory=partial(DpiEngine),
                shards=shards, workers=0,
            )
            assert _verdict_fingerprint(run.verdicts) == _verdict_fingerprint(
                reference_verdicts
            )
            assert _analysis_fingerprint(run.dpi) == _analysis_fingerprint(
                reference_dpi
            )
            # Filter outcome must match the global two-stage filter exactly,
            # including bucket order in removed_by (insertion order of the
            # single-process run).
            got, want = run.filter_result, reference_filter
            assert [s.key for s in got.kept_streams] == [
                s.key for s in want.kept_streams
            ]
            assert list(got.removed_by) == list(want.removed_by)
            for reason, streams in want.removed_by.items():
                assert [s.key for s in got.removed_by[reason]] == [
                    s.key for s in streams
                ]
            assert got.raw == want.raw
            assert got.stage1_removed == want.stage1_removed
            assert got.stage2_removed == want.stage2_removed
            assert got.kept == want.kept
            assert got.evaluation == want.evaluation
            assert [r.timestamp for r in got.kept_records] == [
                r.timestamp for r in want.kept_records
            ]

    def test_run_cell_pipeline_shard_workers(self, raw_trace):
        config = ExperimentConfig(call_duration=6.0, media_scale=0.3, seed=2)
        reference = run_cell_pipeline("meet", NetworkCondition.CELLULAR, config)
        sharded = run_cell_pipeline(
            "meet", NetworkCondition.CELLULAR, config, shard_workers=2
        )
        assert _verdict_fingerprint(sharded.verdicts) == _verdict_fingerprint(
            reference.verdicts
        )
        assert (sharded.filter_result.evaluation
                == reference.filter_result.evaluation)

    def test_run_cell_pipeline_rejects_bad_shard_workers(self):
        config = ExperimentConfig(call_duration=6.0, media_scale=0.3, seed=2)
        with pytest.raises(ValueError):
            run_cell_pipeline(
                "meet", NetworkCondition.CELLULAR, config, shard_workers=0
            )


class TestChunkedExecution:
    def test_chunk_size_invariance_and_counter(self, kept_records):
        per_record = run_streaming(
            kept_records, DpiEngine(), ComplianceChecker(), chunk_size=1
        )
        chunked = run_streaming(
            kept_records, DpiEngine(), ComplianceChecker(),
            chunk_size=DEFAULT_CHUNK_SIZE,
        )
        assert _verdict_fingerprint(chunked[1]) == _verdict_fingerprint(
            per_record[1]
        )
        per_record_chunks = sum(stat.chunks for stat in per_record[2])
        chunked_chunks = sum(stat.chunks for stat in chunked[2])
        assert chunked_chunks > 0
        assert chunked_chunks < per_record_chunks
        assert all("chunks" in stat.as_dict() for stat in chunked[2])

    def test_pipeline_rejects_bad_chunk_size(self):
        from repro.pipeline import Pipeline

        with pytest.raises(ValueError):
            Pipeline([], chunk_size=0)


class TestScheduler:
    def test_submission_order_largest_first_stable(self):
        items = ["b", "a", "c", "a"]
        order = submission_order(items, lambda item: {"a": 2, "b": 1, "c": 3}[item])
        assert order == [2, 1, 3, 0]

    def test_expected_cell_cost_scales_with_config(self):
        small = ExperimentConfig(call_duration=5.0, media_scale=0.2)
        large = ExperimentConfig(call_duration=20.0, media_scale=0.5)
        cell = ("zoom", NetworkCondition.WIFI_RELAY, 0)
        assert expected_cell_cost(cell, large) > expected_cell_cost(cell, small)

    def test_shared_pool_rejects_bad_workers(self):
        from repro.experiments import shared_pool

        with pytest.raises(ValueError):
            shared_pool(0)


class TestShardPlan:
    def test_auto_sizes_to_cpu_count(self):
        plan = plan_shard_workers(None, tasks=8, cpu_count=4)
        assert plan.effective == 4
        assert not plan.clamped and not plan.in_process

    def test_clamps_to_cpu_count(self):
        # The sharding cliff: 4 requested workers on a 1-CPU box must
        # degrade to in-process execution, not oversubscribe.
        plan = plan_shard_workers(4, tasks=4, cpu_count=1)
        assert plan.effective == 1
        assert plan.clamped and plan.in_process
        assert "clamped to 1 cpu" in plan.describe()
        assert plan.describe().startswith("in-process")

    def test_caps_at_task_count_without_clamp_flag(self):
        plan = plan_shard_workers(8, tasks=2, cpu_count=16)
        assert plan.effective == 2
        assert not plan.clamped
        assert plan.describe() == "2 workers"

    def test_zero_and_one_force_in_process(self):
        for requested in (0, 1):
            plan = plan_shard_workers(requested, tasks=8, cpu_count=8)
            assert plan.in_process
            assert plan.effective == requested

    def test_as_dict_round_trips_the_decision(self):
        plan = plan_shard_workers(4, tasks=4, cpu_count=2)
        assert plan.as_dict() == {
            "requested": 4, "effective": 2, "cpu_count": 2,
            "clamped": True, "in_process": False,
        }

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shard_workers(-1, tasks=4)
        with pytest.raises(ValueError):
            plan_shard_workers(2, tasks=4, cpu_count=0)

    def test_executor_applies_the_plan(self, kept_records):
        # A wildly oversubscribed request must behave exactly like the
        # in-process reference on this machine (and on any machine:
        # bit-identical by contract, clamped by the plan).
        reference = run_streaming_sharded(
            kept_records, engine_factory=partial(DpiEngine),
            shards=2, workers=0,
        )
        clamped = run_streaming_sharded(
            kept_records, engine_factory=partial(DpiEngine),
            shards=2, workers=64,
        )
        assert _verdict_fingerprint(clamped[1]) == _verdict_fingerprint(
            reference[1]
        )
        assert clamped[0].stats.datagrams == reference[0].stats.datagrams


class TestConformanceSpec:
    def test_sharded_streaming_spec_registered(self):
        from repro.conformance.differ import ENGINE_SPECS

        names = [spec.name for spec in ENGINE_SPECS]
        assert "sharded-streaming" in names
        spec = next(s for s in ENGINE_SPECS if s.name == "sharded-streaming")
        assert spec.shards > 1 and spec.streaming


class TestCliFlags:
    def test_shard_flags_parse(self):
        from repro.cli import build_parser

        for command in ("matrix", "report", "pipeline-stats"):
            args = build_parser().parse_args(
                [command, "--shard-workers", "2", "--chunk-size", "64"]
            )
            assert args.shard_workers == 2
            assert args.chunk_size == 64
            args = build_parser().parse_args([command])
            assert args.shard_workers == 1
            assert args.chunk_size is None

    def test_shard_flags_reject_nonpositive(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--shard-workers", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--chunk-size", "0"])
