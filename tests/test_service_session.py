"""Session-vs-batch parity and lifecycle tests for the service layer.

The contract under test: an :class:`~repro.service.AnalysisSession` fed
incrementally — arbitrary chunk sizes, eviction enabled — produces
bit-identical artifacts (verdict order, analysis order, compliance
summary, filter accounting) to the batch ``run_cell_pipeline`` adapter,
for every cell of the golden corpus.  Plus the memory story: eviction
finalizes state mid-feed, and rotated sessions hold memory flat over a
tracemalloc soak.
"""

import gc
import os
import random
import threading
import tracemalloc
from dataclasses import replace

import pytest

from repro.apps import APP_NAMES, NetworkCondition, get_simulator
from repro.conformance.golden import CorpusConfig, cell_records, experiment_config
from repro.core import ComplianceChecker, ComplianceSummary
from repro.dpi import DpiEngine
from repro.experiments.runner import _cell_config, run_cell_pipeline
from repro.pipeline import run_streaming
from repro.service import AnalysisSession, EvictionPolicy

CELLS = [(app, network) for app in APP_NAMES for network in NetworkCondition]

_CORPUS = CorpusConfig()


def _verdict_fingerprint(verdicts):
    return [
        (
            v.message.protocol.value,
            v.message.type_key(),
            v.message.offset,
            v.message.length,
            v.compliant,
            tuple(map(tuple, v.violation_keys())),
        )
        for v in verdicts
    ]


def _analysis_fingerprint(dpi):
    return [
        (
            a.record.timestamp,
            a.record.flow_key,
            a.classification.value,
            tuple((m.protocol.value, m.offset, m.length) for m in a.messages),
        )
        for a in dpi.analyses
    ]


def _feed_in_random_chunks(session, records, rng):
    index = 0
    while index < len(records):
        step = rng.randint(1, 400)
        session.feed(records[index:index + step])
        index += step


def test_cells_cover_full_matrix():
    assert len(CELLS) == 18


@pytest.mark.parametrize("app,network", CELLS, ids=lambda v: getattr(v, "value", v))
def test_session_matches_batch_bit_identical(app, network):
    """Satellite (d): all 18 golden cells, randomized chunks, eviction on."""
    config = experiment_config(_CORPUS)
    batch = run_cell_pipeline(
        app,
        network,
        config,
        engine=DpiEngine(max_offset=_CORPUS.max_offset),
        checker=ComplianceChecker(),
    )

    call_config = _cell_config(network, config, 0)
    records = list(get_simulator(app).iter_records(call_config))
    rng = random.Random(f"{app}:{network.value}")
    session = AnalysisSession(
        window=call_config.window(),
        engine=DpiEngine(max_offset=_CORPUS.max_offset),
        checker=ComplianceChecker(),
        eviction=EvictionPolicy(mode="deadline", sweep_interval=0.5),
    )
    _feed_in_random_chunks(session, records, rng)
    result = session.close()

    assert _verdict_fingerprint(result.verdicts) == _verdict_fingerprint(
        batch.verdicts
    )
    assert _analysis_fingerprint(result.dpi) == _analysis_fingerprint(batch.dpi)
    assert result.summary(app) == ComplianceSummary.from_verdicts(
        app, batch.verdicts
    )
    assert result.filter_result is not None
    assert (
        result.filter_result.kept_records == batch.filter_result.kept_records
    )
    assert result.filter_result.kept == batch.filter_result.kept
    assert result.filter_result.raw == batch.filter_result.raw
    assert (
        result.filter_result.stage1_removed == batch.filter_result.stage1_removed
    )
    assert (
        result.filter_result.stage2_removed == batch.filter_result.stage2_removed
    )


def test_filterless_session_matches_run_streaming():
    """Pre-filtered feed (no window) reproduces the streaming adapter."""
    records = cell_records("meet", NetworkCondition.WIFI_RELAY, _CORPUS)
    dpi, verdicts, _ = run_streaming(
        records, DpiEngine(max_offset=_CORPUS.max_offset), ComplianceChecker()
    )
    session = AnalysisSession(
        engine=DpiEngine(max_offset=_CORPUS.max_offset),
        checker=ComplianceChecker(),
        # idle_gap longer than any intra-flow gap in an 8 s call: exact.
        eviction=EvictionPolicy(mode="idle", idle_gap=60.0),
    )
    rng = random.Random(7)
    _feed_in_random_chunks(session, records, rng)
    result = session.close()
    assert result.filter_result is None
    assert _verdict_fingerprint(result.verdicts) == _verdict_fingerprint(verdicts)
    assert _analysis_fingerprint(result.dpi) == _analysis_fingerprint(dpi)


def test_idle_eviction_finalizes_flows_mid_feed():
    """With a small idle gap, verdicts appear before close.

    The facetime P2P cell is the corpus cell whose STUN flow goes
    quiet longest before capture end (~2.6 s), so a 1 s idle gap
    finalizes it mid-feed while the media flow keeps streaming.
    """
    records = cell_records("facetime", NetworkCondition.WIFI_P2P, _CORPUS)
    session = AnalysisSession(
        engine=DpiEngine(),
        checker=ComplianceChecker(),
        eviction=EvictionPolicy(mode="idle", idle_gap=1.0, sweep_interval=0.5),
    )
    session.feed(records)
    before_close = session.snapshot()
    assert before_close.verdicts_ready > 0, "idle eviction never fired"
    assert not before_close.closed
    result = session.close()
    # Every record still got analyzed exactly once.
    udp_records = [r for r in records if r.transport == "UDP"]
    assert len(result.dpi.analyses) == len(udp_records)
    assert len(result.verdicts) == session.snapshot().verdicts_ready


def test_snapshot_is_detached_and_progresses():
    records = cell_records("meet", NetworkCondition.CELLULAR, _CORPUS)
    call = _cell_config(
        NetworkCondition.CELLULAR, experiment_config(_CORPUS), 0
    )
    session = AnalysisSession(window=call.window())
    half = len(records) // 2
    session.feed(records[:half])
    snap = session.snapshot()
    assert snap.records_fed == half
    assert snap.watermark == max(r.timestamp for r in records[:half])
    assert not snap.closed
    names = [stat.name for stat in snap.stages]
    assert names == ["filter", "dpi", "check"]
    # Detached copies: mutating the snapshot cannot touch live counters.
    snap.stages[0].records_in = -1
    session.feed(records[half:])
    assert session.snapshot().stages[0].records_in == len(records)
    session.close()
    assert session.snapshot().closed
    payload = session.snapshot().to_json()
    assert payload["records_fed"] == len(records)
    assert [s["name"] for s in payload["stages"]] == names


def test_feed_after_close_raises():
    session = AnalysisSession()
    session.close()
    with pytest.raises(RuntimeError):
        session.feed([])


def test_close_is_idempotent():
    records = cell_records("facetime", NetworkCondition.WIFI_P2P, _CORPUS)
    session = AnalysisSession()
    session.feed(records)
    assert session.close() is session.close()


def test_eviction_policy_validation():
    with pytest.raises(ValueError):
        EvictionPolicy(mode="sometimes")
    with pytest.raises(ValueError):
        EvictionPolicy(idle_gap=0.0)
    with pytest.raises(ValueError):
        EvictionPolicy(sweep_interval=-1.0)


def _rotated_records(base, iteration):
    """Shift a record list in time and across flows: fresh flows per pass."""
    offset = 100.0 * iteration
    port_shift = (iteration * 7) % 2000
    return [
        replace(
            record,
            timestamp=record.timestamp + offset,
            src_port=record.src_port + port_shift,
            dst_port=record.dst_port + port_shift,
        )
        for record in base
    ]


def test_soak_concurrent_sessions_flat_memory():
    """Satellite (d) soak: concurrent rotated sessions, flat tracemalloc.

    Budget defaults to ~30 s; ``RTC_SOAK_SECONDS`` overrides (CI can
    shorten or lengthen it).  Each worker loops full session lifecycles
    over rotating flows, so live memory after N iterations should match
    live memory after one warmup pass — growth means a session leaks
    state past ``close``.
    """
    budget = float(os.environ.get("RTC_SOAK_SECONDS", "30"))
    base = cell_records("meet", NetworkCondition.WIFI_P2P, _CORPUS)
    deadline = threading.Event()
    errors = []
    iterations = [0] * 3

    def worker(slot):
        iteration = 0
        while not deadline.is_set():
            try:
                session = AnalysisSession(
                    eviction=EvictionPolicy(mode="idle", idle_gap=2.0),
                )
                session.feed(_rotated_records(base, iteration * 3 + slot))
                result = session.close()
                assert result.verdicts, "soak session produced no verdicts"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return
            iteration += 1
            iterations[slot] = iteration

    gc.collect()
    tracemalloc.start()
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
    for thread in threads:
        thread.start()
    # Warmup: let every worker finish at least one full lifecycle before
    # taking the baseline, so steady-state allocations are in the base.
    baseline = None
    timer = threading.Event()
    elapsed = 0.0
    while elapsed < budget:
        timer.wait(0.25)
        elapsed += 0.25
        if baseline is None and all(n >= 1 for n in iterations):
            gc.collect()
            baseline = tracemalloc.get_traced_memory()[0]
    deadline.set()
    for thread in threads:
        thread.join(timeout=30.0)
    gc.collect()
    final = tracemalloc.get_traced_memory()[0]
    tracemalloc.stop()

    assert not errors, errors
    assert baseline is not None, "soak budget too small for one warmup pass"
    assert sum(iterations) >= 3
    # Flat memory: the live heap after the soak stays within a fixed
    # slack of the post-warmup baseline, independent of iteration count.
    slack = 8 * 1024 * 1024
    assert final <= baseline + slack, (
        f"memory grew {final - baseline} bytes over {sum(iterations)} "
        f"session lifecycles (baseline {baseline})"
    )
