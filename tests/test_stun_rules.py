"""Tests for the STUN/TURN compliance rules (five criteria)."""

import pytest

from repro.core.checker import ComplianceChecker
from repro.core.stun_rules import StunSessionContext, check_stun
from repro.core.verdict import Criterion
from repro.dpi.messages import ExtractedMessage, Protocol
from repro.packets.packet import PacketRecord
from repro.protocols.stun.attributes import (
    StunAttribute,
    channel_number_value,
    encode_error_code,
    encode_xor_address,
    requested_transport_value,
)
from repro.protocols.stun.constants import AttributeType
from repro.protocols.stun.message import ChannelData, StunMessage, build_with_fingerprint

_A = AttributeType


def extract(message, timestamp=1.0, port=50000, raw=None, trailer=b""):
    if raw is None:
        raw = message.build() if isinstance(message, StunMessage) else message.build()
    record = PacketRecord(
        timestamp=timestamp, src_ip="10.0.0.1", src_port=port,
        dst_ip="20.0.0.2", dst_port=3478, transport="UDP", payload=raw,
    )
    parsed = (
        StunMessage.parse(raw, strict=False)
        if not isinstance(message, ChannelData)
        else message
    )
    return ExtractedMessage(
        protocol=Protocol.STUN_TURN, offset=0, length=len(raw) - len(trailer),
        message=parsed, record=record, trailer=trailer,
    )


def judge(message, **kwargs):
    extracted = extract(message, **kwargs)
    context = StunSessionContext([extracted])
    return check_stun(extracted, context)


def stun(msg_type, attrs=(), classic=False, txid=None):
    txid = txid if txid is not None else bytes(16 if classic else 12)
    return StunMessage(msg_type=msg_type, transaction_id=txid,
                       attributes=list(attrs), classic=classic)


class TestCriterion1:
    def test_binding_request_compliant(self):
        assert judge(stun(0x0001)) == []

    @pytest.mark.parametrize("msg_type", [0x0800, 0x0801, 0x0805, 0x0ABC])
    def test_undefined_types_fail(self, msg_type):
        violations = judge(stun(msg_type))
        assert violations[0].criterion is Criterion.MESSAGE_TYPE

    def test_goog_ping_defined(self):
        assert judge(stun(0x0200)) == []
        assert judge(stun(0x0300)) == []

    def test_classic_shared_secret_defined(self):
        assert judge(stun(0x0002, classic=True)) == []

    def test_turn_types_defined(self):
        for msg_type in (0x0003, 0x0103, 0x0113, 0x0004, 0x0008, 0x0009,
                         0x0016, 0x0017, 0x0104, 0x0108, 0x0109, 0x0118):
            attrs = []
            if msg_type == 0x0016 or msg_type == 0x0017:
                attrs = [
                    StunAttribute(int(_A.XOR_PEER_ADDRESS),
                                  encode_xor_address("1.2.3.4", 5, bytes(12))),
                    StunAttribute(int(_A.DATA), b"d"),
                ]
            assert judge(stun(msg_type, attrs)) == [], hex(msg_type)


class TestCriterion3:
    @pytest.mark.parametrize("attr_type", [0x0101, 0x0103, 0x4000, 0x4003,
                                           0x4004, 0x8007, 0x8008])
    def test_undefined_attributes_fail(self, attr_type):
        violations = judge(stun(0x0001, [StunAttribute(attr_type, b"\x00" * 4)]))
        assert violations[0].criterion is Criterion.ATTRIBUTE_TYPES
        assert violations[0].code == "undefined-attribute"

    def test_defined_attributes_pass(self):
        message = stun(0x0001, [
            StunAttribute(int(_A.USERNAME), b"u:p"),
            StunAttribute(int(_A.PRIORITY), bytes(4)),
            StunAttribute(int(_A.SOFTWARE), b"lib"),
        ])
        assert judge(message) == []


class TestCriterion4:
    def test_reservation_token_length(self):
        message = stun(0x0003, [
            StunAttribute(int(_A.REQUESTED_TRANSPORT), requested_transport_value()),
            StunAttribute(int(_A.RESERVATION_TOKEN), b"\x00" * 5),
        ])
        violations = judge(message)
        assert violations[0].code == "bad-attribute-length"
        assert violations[0].criterion is Criterion.ATTRIBUTE_VALUES

    def test_alternate_server_family_zero(self):
        # FaceTime's 0x00 family in ALTERNATE-SERVER (§5.2.1).
        import struct
        value = struct.pack("!BBH", 0, 0x00, 3478) + bytes(4)
        message = stun(0x0101, [StunAttribute(int(_A.ALTERNATE_SERVER), value)])
        violations = judge(message)
        assert violations[0].code == "bad-address-family"

    def test_channel_number_zero_value(self):
        # FaceTime's CHANNEL-NUMBER 0x00000000 in Data Indications.
        message = stun(0x0017, [
            StunAttribute(int(_A.XOR_PEER_ADDRESS),
                          encode_xor_address("1.2.3.4", 5, bytes(12))),
            StunAttribute(int(_A.DATA), b"d"),
            StunAttribute(int(_A.CHANNEL_NUMBER), bytes(4)),
        ])
        violations = judge(message)
        assert violations[0].code == "bad-channel-number"

    def test_data_indication_closed_set(self):
        message = stun(0x0017, [
            StunAttribute(int(_A.XOR_PEER_ADDRESS),
                          encode_xor_address("1.2.3.4", 5, bytes(12))),
            StunAttribute(int(_A.DATA), b"d"),
            StunAttribute(int(_A.LIFETIME), bytes(4)),
        ])
        violations = judge(message)
        assert violations[0].code == "attribute-not-allowed"

    def test_priority_in_success_response(self):
        # The paper's own criterion-4 example.
        message = stun(0x0101, [StunAttribute(int(_A.PRIORITY), bytes(4))])
        violations = judge(message)
        assert violations[0].code == "attribute-not-allowed"

    def test_bad_error_class(self):
        message = stun(0x0113, [
            StunAttribute(int(_A.ERROR_CODE), encode_error_code(701, "?")),
        ])
        violations = judge(message)
        assert violations[0].code == "bad-error-code"

    def test_valid_error_passes(self):
        message = stun(0x0113, [
            StunAttribute(int(_A.ERROR_CODE), encode_error_code(401, "Unauthorized")),
        ])
        assert judge(message) == []

    def test_fingerprint_crc_verified(self):
        good = build_with_fingerprint(stun(0x0001, [StunAttribute(int(_A.USERNAME), b"u")]))
        parsed = StunMessage.parse(good)
        extracted = extract(parsed, raw=good)
        assert check_stun(extracted, StunSessionContext([extracted])) == []
        # Corrupt the CRC.
        bad = good[:-1] + bytes([good[-1] ^ 0xFF])
        parsed_bad = StunMessage.parse(bad)
        extracted_bad = extract(parsed_bad, raw=bad)
        violations = check_stun(extracted_bad, StunSessionContext([extracted_bad]))
        assert violations[0].code == "bad-fingerprint"

    def test_fingerprint_must_be_last(self):
        message = stun(0x0001, [
            StunAttribute(int(_A.FINGERPRINT), bytes(4)),
            StunAttribute(int(_A.USERNAME), b"u"),
        ])
        violations = judge(message)
        assert violations[0].code == "bad-fingerprint"


class TestCriterion5:
    def _messages(self, builder, count, spacing=1.0, start=0.0):
        extracted = []
        for i in range(count):
            extracted.append(extract(builder(i), timestamp=start + i * spacing))
        return extracted

    def test_unanswered_retransmissions_flagged(self):
        txid = bytes(12)
        messages = self._messages(lambda i: stun(0x0001, txid=txid), 10)
        context = StunSessionContext(messages)
        violations = check_stun(messages[0], context)
        assert violations[0].code == "unanswered-retransmission"

    def test_answered_transaction_not_flagged(self):
        txid = bytes(12)
        messages = self._messages(lambda i: stun(0x0001, txid=txid), 10)
        messages.append(extract(stun(0x0101, txid=txid), timestamp=11.0))
        context = StunSessionContext(messages)
        assert check_stun(messages[0], context) == []

    def test_few_retransmissions_not_flagged(self):
        # Normal STUN retransmits a handful of times over ~few seconds.
        txid = bytes(12)
        messages = self._messages(lambda i: stun(0x0001, txid=txid), 3)
        context = StunSessionContext(messages)
        assert check_stun(messages[0], context) == []

    @staticmethod
    def _random_txid(i):
        # Distinct but non-sequential IDs, so only the ping-pong rule fires.
        import hashlib
        return hashlib.sha1(f"txid-{i}".encode()).digest()[:12]

    def test_allocate_pingpong_flagged(self):
        def build(i):
            return stun(0x0003, [
                StunAttribute(int(_A.REQUESTED_TRANSPORT), requested_transport_value()),
            ], txid=self._random_txid(i))
        messages = self._messages(build, 20, spacing=1.0)
        context = StunSessionContext(messages)
        violations = check_stun(messages[5], context)
        assert violations[0].code == "allocate-pingpong"

    def test_sparse_allocates_not_flagged(self):
        def build(i):
            return stun(0x0003, [
                StunAttribute(int(_A.REQUESTED_TRANSPORT), requested_transport_value()),
            ], txid=self._random_txid(i))
        messages = self._messages(build, 3, spacing=20.0)
        context = StunSessionContext(messages)
        assert check_stun(messages[0], context) == []


class TestChannelDataRules:
    def test_valid_frame_compliant(self):
        frame = ChannelData(channel=0x4005, data=b"media")
        extracted = extract(frame, raw=frame.build())
        assert check_stun(extracted, StunSessionContext([])) == []

    def test_reserved_channel_flagged(self):
        frame = ChannelData(channel=0x5001, data=b"media")
        extracted = extract(frame, raw=frame.build())
        violations = check_stun(extracted, StunSessionContext([]))
        assert violations[0].code == "bad-channel-number"
        assert violations[0].criterion is Criterion.HEADER_FIELDS

    def test_padding_over_udp_flagged(self):
        frame = ChannelData(channel=0x4005, data=b"media")
        raw = frame.build() + b"\x00\x00"
        extracted = extract(frame, raw=raw, trailer=b"\x00\x00")
        violations = check_stun(extracted, StunSessionContext([]))
        assert violations[0].code == "channeldata-padding"
        assert violations[0].criterion is Criterion.SEMANTICS


class TestSequentialMode:
    def test_stops_at_first_criterion(self):
        # Undefined type AND undefined attribute: sequential reports only C1.
        message = stun(0x0800, [StunAttribute(0x4000, b"x")])
        extracted = extract(message)
        sequential = check_stun(extracted, StunSessionContext([extracted]), True)
        assert len(sequential) == 1
        exhaustive = check_stun(extracted, StunSessionContext([extracted]), False)
        assert len(exhaustive) == 2
        assert {v.criterion for v in exhaustive} == {
            Criterion.MESSAGE_TYPE, Criterion.ATTRIBUTE_TYPES,
        }
