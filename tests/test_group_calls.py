"""Tests for the group-call extension (the paper's declared future work)."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine
from repro.experiments.case_studies import observed_rtp_ssrcs
from repro.filtering import TwoStageFilter

SFU_APPS = ("zoom", "meet", "discord")
P2P_APPS = ("facetime", "whatsapp", "messenger")


def analyze(app, participants):
    trace = get_simulator(app).simulate(
        CallConfig(network=NetworkCondition.WIFI_RELAY, seed=8,
                   call_duration=8.0, media_scale=0.25,
                   participants=participants)
    )
    kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
    return trace, DpiEngine().analyze_records(kept)


class TestGroupCalls:
    def test_participants_validated(self):
        with pytest.raises(ValueError):
            CallConfig(network=NetworkCondition.WIFI_RELAY, participants=1)

    @pytest.mark.parametrize("app,extra_visible", [
        # Two extra parties add an audio+video pair each — except Meet,
        # whose relay audio rides inside ChannelData and is therefore not
        # counted as RTP by the DPI (only the video streams surface).
        ("zoom", 4), ("discord", 4), ("meet", 2),
    ])
    def test_extra_participants_add_inbound_streams(self, app, extra_visible):
        _t2, dpi2 = analyze(app, participants=2)
        _t4, dpi4 = analyze(app, participants=4)
        ssrcs2 = observed_rtp_ssrcs(dpi2.messages())
        ssrcs4 = observed_rtp_ssrcs(dpi4.messages())
        assert len(ssrcs4) == len(ssrcs2) + extra_visible

    @pytest.mark.parametrize("app", SFU_APPS)
    def test_group_traffic_volume_scales(self, app):
        _t2, dpi2 = analyze(app, participants=2)
        _t5, dpi5 = analyze(app, participants=5)
        assert len(dpi5.analyses) > len(dpi2.analyses) * 1.5

    @pytest.mark.parametrize("app", P2P_APPS)
    def test_p2p_apps_reject_groups(self, app):
        with pytest.raises(ValueError, match="group calls"):
            get_simulator(app).simulate(
                CallConfig(network=NetworkCondition.WIFI_RELAY, participants=3)
            )

    def test_zoom_group_ssrcs_stay_deterministic(self):
        _trace, dpi = analyze("zoom", participants=3)
        from repro.apps.zoom import INBOUND_SSRCS, OUTBOUND_SSRCS
        expected = (
            set(OUTBOUND_SSRCS[NetworkCondition.WIFI_RELAY])
            | set(INBOUND_SSRCS)
            | {INBOUND_SSRCS[0] + 2, INBOUND_SSRCS[1] + 2}
        )
        assert observed_rtp_ssrcs(dpi.messages()) <= expected

    def test_group_call_compliance_unchanged(self):
        """Extra participants change volume, not per-message verdicts."""
        from repro.core import ComplianceChecker, ComplianceSummary
        _trace, dpi = analyze("discord", participants=4)
        verdicts = ComplianceChecker().check(dpi.messages())
        summary = ComplianceSummary.from_verdicts("discord", verdicts)
        assert summary.type_ratio() == (0, 9)
