"""Tests for the conventional-DPI baseline and the engine comparison."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine, Protocol
from repro.dpi.baseline import BaselineDpi, PEAFOWL_PAYLOAD_TYPES, compare_engines
from repro.filtering import TwoStageFilter
from repro.packets.packet import PacketRecord
from repro.protocols.rtp.header import RtpPacket
from repro.protocols.stun.attributes import StunAttribute
from repro.protocols.stun.message import StunMessage


def udp(payload, t=1.0):
    return PacketRecord(timestamp=t, src_ip="10.0.0.1", src_port=1,
                        dst_ip="20.0.0.2", dst_port=2, transport="UDP",
                        payload=payload)


class TestBaselineLimitations:
    """Each test is one of the paper's stated conventional-DPI failures."""

    def test_misses_messages_behind_proprietary_headers(self):
        rtp = RtpPacket(payload_type=0, sequence_number=1, timestamp=2,
                        ssrc=3, payload=bytes(40)).build()
        wrapped = udp(b"\x04\x64" + bytes(22) + rtp)
        assert not BaselineDpi().analyze_records([wrapped]).messages()

    def test_rejects_undefined_stun_types(self):
        message = StunMessage(msg_type=0x0801, transaction_id=bytes(12),
                              attributes=[StunAttribute(0x4003, b"\xff")])
        assert not BaselineDpi().analyze_records([udp(message.build())]).messages()

    def test_rejects_undefined_attributes(self):
        message = StunMessage(msg_type=0x0001, transaction_id=bytes(12),
                              attributes=[StunAttribute(0x8007, bytes(4))])
        assert not BaselineDpi().analyze_records([udp(message.build())]).messages()

    def test_rejects_classic_stun(self):
        message = StunMessage(msg_type=0x0001, transaction_id=bytes(16),
                              classic=True)
        assert not BaselineDpi().analyze_records([udp(message.build())]).messages()

    def test_restricts_rtp_payload_types(self):
        dynamic = RtpPacket(payload_type=111, sequence_number=1, timestamp=2,
                            ssrc=3, payload=bytes(40)).build()
        static = RtpPacket(payload_type=0, sequence_number=1, timestamp=2,
                           ssrc=3, payload=bytes(40)).build()
        baseline = BaselineDpi()
        assert not baseline.analyze_records([udp(dynamic)]).messages()
        found = baseline.analyze_records([udp(static)]).messages()
        assert found and found[0].protocol is Protocol.RTP

    def test_accepts_fully_standard_traffic(self):
        message = StunMessage(msg_type=0x0001, transaction_id=bytes(12))
        found = BaselineDpi().analyze_records([udp(message.build())]).messages()
        assert found and found[0].message.msg_type == 0x0001

    def test_accepts_plain_rtcp(self):
        from repro.protocols.rtcp.packets import ReceiverReport
        raw = ReceiverReport(ssrc=1).to_packet().build()
        found = BaselineDpi().analyze_records([udp(raw)]).messages()
        assert found and found[0].protocol is Protocol.RTCP

    def test_rejects_rtcp_with_trailer(self):
        from repro.protocols.rtcp.packets import ReceiverReport
        raw = ReceiverReport(ssrc=1).to_packet().build() + b"\x00\x01\x80"
        assert not BaselineDpi().analyze_records([udp(raw)]).messages()

    def test_peafowl_set_is_static_assignments(self):
        assert 0 in PEAFOWL_PAYLOAD_TYPES
        assert 34 in PEAFOWL_PAYLOAD_TYPES
        assert 96 not in PEAFOWL_PAYLOAD_TYPES


class TestComparison:
    @pytest.mark.parametrize("app,min_gain", [
        ("zoom", 0.95),       # everything behind proprietary headers
        ("facetime", 0.5),    # undefined PTs + relay headers
        ("discord", 0.5),     # dynamic payload types invisible to Peafowl
    ])
    def test_custom_engine_dominates(self, app, min_gain):
        trace = get_simulator(app).simulate(
            CallConfig(network=NetworkCondition.WIFI_RELAY, seed=2,
                       call_duration=8.0, media_scale=0.25)
        )
        kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
        comparison = compare_engines(kept)
        assert comparison.custom_messages > comparison.baseline_messages
        assert comparison.message_recall_gain >= min_gain

    def test_gap_zero_for_fully_standard_traffic(self):
        messages = [
            StunMessage(msg_type=0x0001, transaction_id=bytes([i] * 12)).build()
            for i in range(10)
        ]
        records = [udp(m, t=float(i)) for i, m in enumerate(messages)]
        comparison = compare_engines(records)
        assert comparison.custom_messages == comparison.baseline_messages == 10
        assert comparison.message_recall_gain == 0.0
