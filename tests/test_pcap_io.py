"""Tests for pcap/pcapng reading and writing and full-stack decode."""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packets.decode import (
    LINKTYPE_ETHERNET,
    LINKTYPE_NULL,
    LINKTYPE_RAW,
    DecodeError,
    decode_frame,
    encode_record,
)
from repro.packets.packet import PacketRecord
from repro.packets.pcap import (
    PcapFormatError,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)
from repro.packets.pcapng import read_pcapng, write_pcapng


def make_record(**overrides):
    defaults = dict(
        timestamp=123.456789,
        src_ip="10.0.0.1",
        src_port=5000,
        dst_ip="93.184.216.34",
        dst_port=443,
        transport="UDP",
        payload=b"payload-bytes",
    )
    defaults.update(overrides)
    return PacketRecord(**defaults)


class TestEncodeDecode:
    @pytest.mark.parametrize("link_type", [LINKTYPE_ETHERNET, LINKTYPE_RAW, LINKTYPE_NULL])
    def test_round_trip_udp(self, link_type):
        record = make_record()
        decoded = decode_frame(link_type, encode_record(record, link_type), record.timestamp)
        assert decoded.five_tuple == record.five_tuple
        assert decoded.payload == record.payload

    def test_round_trip_tcp(self):
        record = make_record(transport="TCP", payload=b"segment")
        decoded = decode_frame(
            LINKTYPE_ETHERNET, encode_record(record), record.timestamp
        )
        assert decoded.transport == "TCP"
        assert decoded.payload == b"segment"

    def test_round_trip_ipv6(self):
        record = make_record(src_ip="fd00::1", dst_ip="2001:db8::9")
        decoded = decode_frame(
            LINKTYPE_ETHERNET, encode_record(record), record.timestamp
        )
        assert decoded.src_ip == "fd00::1"
        assert decoded.dst_ip == "2001:db8::9"

    def test_non_ip_frame_rejected(self):
        arp = b"\xff" * 12 + b"\x08\x06" + bytes(28)
        with pytest.raises(DecodeError):
            decode_frame(LINKTYPE_ETHERNET, arp, 0.0)

    def test_unknown_link_type_rejected(self):
        with pytest.raises(DecodeError):
            decode_frame(147, b"\x00" * 40, 0.0)

    def test_non_udp_tcp_protocol_rejected(self):
        from repro.packets.ip import IPv4Header
        icmp = IPv4Header(src_ip="1.1.1.1", dst_ip="2.2.2.2", proto=1,
                          payload=b"\x08\x00" + bytes(6)).build()
        with pytest.raises(DecodeError):
            decode_frame(LINKTYPE_RAW, icmp, 0.0)


class TestPcap:
    def test_round_trip_file(self, tmp_path):
        records = [make_record(timestamp=float(i)) for i in range(5)]
        path = tmp_path / "t.pcap"
        assert write_pcap(path, records) == 5
        back = read_pcap(path)
        assert len(back) == 5
        assert [r.payload for r in back] == [r.payload for r in records]

    def test_timestamp_precision_micros(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [make_record(timestamp=1.234567)])
        assert abs(read_pcap(path)[0].timestamp - 1.234567) < 1e-6

    def test_timestamp_precision_nanos(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [make_record(timestamp=1.123456789)], nanosecond=True)
        assert abs(read_pcap(path)[0].timestamp - 1.123456789) < 1e-9

    def test_negative_timestamp_rejected(self):
        writer = PcapWriter(io.BytesIO())
        with pytest.raises(ValueError):
            writer.write_frame(-1.0, b"x")

    def test_bad_magic_rejected(self):
        with pytest.raises(PcapFormatError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_header_rejected(self):
        with pytest.raises(PcapFormatError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, [make_record()])
        data = path.read_bytes()[:-4]
        with pytest.raises(PcapFormatError):
            list(PcapReader(io.BytesIO(data)))

    def test_big_endian_pcap_readable(self):
        # Hand-build a big-endian pcap with one tiny raw-IP frame.
        frame = encode_record(make_record(payload=b"x"), LINKTYPE_RAW)
        buf = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 262144, LINKTYPE_RAW)
        buf += struct.pack(">IIII", 10, 500000, len(frame), len(frame)) + frame
        records = list(PcapReader(io.BytesIO(buf)).records())
        assert records[0].payload == b"x"
        assert abs(records[0].timestamp - 10.5) < 1e-6

    def test_undecodable_frames_skipped(self, tmp_path):
        path = tmp_path / "t.pcap"
        with open(path, "wb") as fileobj:
            writer = PcapWriter(fileobj)
            writer.write_frame(1.0, b"\xff" * 12 + b"\x08\x06" + bytes(28))  # ARP
            writer.write_record(make_record())
        assert len(read_pcap(path)) == 1

    @settings(max_examples=25)
    @given(st.binary(min_size=1, max_size=300), st.floats(min_value=0, max_value=1e6))
    def test_property_payload_survives(self, payload, timestamp):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_record(make_record(payload=payload, timestamp=timestamp))
        buffer.seek(0)
        records = list(PcapReader(buffer).records())
        assert records[0].payload == payload


class TestPcapng:
    def test_round_trip_file(self, tmp_path):
        records = [make_record(timestamp=float(i) + 0.25) for i in range(4)]
        path = tmp_path / "t.pcapng"
        assert write_pcapng(path, records) == 4
        back = read_pcapng(path)
        assert [r.payload for r in back] == [r.payload for r in records]
        assert abs(back[1].timestamp - 1.25) < 1e-6

    def test_mixed_transports(self, tmp_path):
        path = tmp_path / "t.pcapng"
        write_pcapng(path, [make_record(), make_record(transport="TCP")])
        back = read_pcapng(path)
        assert [r.transport for r in back] == ["UDP", "TCP"]

    def test_unknown_blocks_skipped(self, tmp_path):
        path = tmp_path / "t.pcapng"
        write_pcapng(path, [make_record()])
        data = bytearray(path.read_bytes())
        # Append an unknown block type (0x99) — must be ignored.
        body = b"\x00" * 8
        unknown = struct.pack("<II", 0x99, len(body) + 12) + body + struct.pack(
            "<I", len(body) + 12
        )
        path.write_bytes(bytes(data) + unknown)
        assert len(read_pcapng(path)) == 1
