"""Tests for the RTCP codec, compound parsing, and SRTCP framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.rtcp.constants import RtcpPacketType, is_known_rtcp_type
from repro.protocols.rtcp.packets import (
    AppPacket,
    ByePacket,
    FeedbackPacket,
    ReceiverReport,
    ReportBlock,
    RtcpHeader,
    RtcpPacket,
    RtcpParseError,
    SdesChunk,
    SdesItem,
    SdesPacket,
    SenderReport,
    XrBlock,
    XrPacket,
    looks_like_rtcp,
    parse_compound,
)
from repro.protocols.rtcp.srtcp import SrtcpTrailer, guess_srtcp_trailer, split_srtcp


def make_block(ssrc=7):
    return ReportBlock(ssrc=ssrc, fraction_lost=3, cumulative_lost=100,
                       highest_seq=5000, jitter=12, lsr=0xAABB0000, dlsr=99)


class TestHeader:
    def test_round_trip(self):
        header = RtcpHeader(version=2, padding=True, count=5,
                            packet_type=200, length_words=6)
        assert RtcpHeader.parse(header.build()) == header

    def test_wire_length(self):
        assert RtcpHeader(2, False, 0, 200, 6).wire_length == 28

    def test_short_buffer_rejected(self):
        with pytest.raises(RtcpParseError):
            RtcpHeader.parse(b"\x80")


class TestSenderReport:
    def test_round_trip(self):
        report = SenderReport(ssrc=1, ntp_timestamp=2**40, rtp_timestamp=3,
                              packet_count=4, octet_count=5,
                              report_blocks=[make_block()])
        packet = report.to_packet()
        assert packet.header.count == 1
        assert SenderReport.from_packet(packet) == report

    def test_truncated_rejected(self):
        packet = SenderReport(ssrc=1, ntp_timestamp=2, rtp_timestamp=3,
                              packet_count=4, octet_count=5).to_packet()
        truncated = RtcpPacket(header=RtcpHeader(2, False, 1, 200,
                                                 packet.header.length_words),
                               body=packet.body)
        with pytest.raises(RtcpParseError):
            SenderReport.from_packet(truncated)

    def test_wrong_type_rejected(self):
        rr = ReceiverReport(ssrc=1).to_packet()
        with pytest.raises(RtcpParseError):
            SenderReport.from_packet(rr)


class TestReceiverReport:
    def test_round_trip(self):
        report = ReceiverReport(ssrc=9, report_blocks=[make_block(), make_block(8)])
        packet = report.to_packet()
        assert packet.header.count == 2
        assert ReceiverReport.from_packet(packet) == report


class TestSdes:
    def test_round_trip(self):
        sdes = SdesPacket(chunks=[
            SdesChunk(ssrc=11, items=[SdesItem(1, b"cname@host")]),
            SdesChunk(ssrc=12, items=[SdesItem(2, b"user"), SdesItem(6, b"tool")]),
        ])
        parsed = SdesPacket.from_packet(sdes.to_packet())
        assert parsed == sdes

    def test_body_is_word_aligned(self):
        packet = SdesPacket(chunks=[SdesChunk(ssrc=1, items=[SdesItem(1, b"ab")])]).to_packet()
        assert len(packet.body) % 4 == 0


class TestBye:
    def test_round_trip(self):
        bye = ByePacket(ssrcs=[1, 2], reason=b"teardown")
        parsed = ByePacket.from_packet(bye.to_packet())
        assert parsed.ssrcs == [1, 2]
        assert parsed.reason == b"teardown"

    def test_no_reason(self):
        parsed = ByePacket.from_packet(ByePacket(ssrcs=[5]).to_packet())
        assert parsed.reason == b""


class TestApp:
    def test_round_trip(self):
        app = AppPacket(ssrc=3, name=b"ZOOM", data=b"\x01\x02\x03\x04", subtype=2)
        parsed = AppPacket.from_packet(app.to_packet())
        assert parsed == app

    def test_name_must_be_4_bytes(self):
        with pytest.raises(ValueError):
            AppPacket(ssrc=1, name=b"TOOLONG").to_packet()

    def test_data_must_be_aligned(self):
        with pytest.raises(ValueError):
            AppPacket(ssrc=1, name=b"ABCD", data=b"xy").to_packet()


class TestFeedback:
    def test_rtpfb_round_trip(self):
        feedback = FeedbackPacket(packet_type=205, fmt=1, sender_ssrc=1,
                                  media_ssrc=2, fci=b"\x00\x01\x00\x00")
        parsed = FeedbackPacket.from_packet(feedback.to_packet())
        assert parsed == feedback

    def test_psfb_pli(self):
        pli = FeedbackPacket(packet_type=206, fmt=1, sender_ssrc=1, media_ssrc=2)
        packet = pli.to_packet()
        assert packet.header.count == 1
        assert FeedbackPacket.from_packet(packet).fci == b""

    def test_fci_alignment_enforced(self):
        with pytest.raises(ValueError):
            FeedbackPacket(packet_type=205, fmt=1, sender_ssrc=1,
                           media_ssrc=2, fci=b"abc").to_packet()


class TestXr:
    def test_round_trip(self):
        xr = XrPacket(ssrc=5, blocks=[XrBlock(block_type=4, type_specific=0,
                                              data=bytes(8))])
        parsed = XrPacket.from_packet(xr.to_packet())
        assert parsed == xr


class TestCompound:
    def test_multiple_packets(self):
        raw = (SenderReport(ssrc=1, ntp_timestamp=0, rtp_timestamp=0,
                            packet_count=0, octet_count=0).to_packet().build()
               + SdesPacket(chunks=[SdesChunk(1, [SdesItem(1, b"c")])]).to_packet().build())
        packets = parse_compound(raw)
        assert [p.packet_type for p in packets] == [200, 202]

    def test_strict_rejects_stray_bytes(self):
        raw = ReceiverReport(ssrc=1).to_packet().build() + b"\x00\x01\x02"
        with pytest.raises(RtcpParseError):
            parse_compound(raw)

    def test_lenient_attaches_trailer(self):
        raw = ReceiverReport(ssrc=1).to_packet().build() + b"\x00\x01\x80"
        packets = parse_compound(raw, strict=False)
        assert packets[-1].trailer == b"\x00\x01\x80"

    def test_empty_garbage_rejected(self):
        with pytest.raises(RtcpParseError):
            parse_compound(b"\x01\x02\x03\x04\x05", strict=False)

    def test_ssrc_property(self):
        packet = ReceiverReport(ssrc=0xCAFE).to_packet()
        assert packet.ssrc == 0xCAFE


class TestSrtcp:
    def test_split_with_tag(self):
        plain = ReceiverReport(ssrc=1).to_packet().build()
        trailer = SrtcpTrailer(encrypted=True, index=42, auth_tag=b"t" * 10)
        protected, parsed = split_srtcp(plain + trailer.build())
        assert protected == plain
        assert parsed.index == 42
        assert parsed.encrypted
        assert parsed.auth_tag == b"t" * 10

    def test_split_without_tag(self):
        plain = ReceiverReport(ssrc=1).to_packet().build()
        trailer = SrtcpTrailer(encrypted=True, index=7, auth_tag=b"")
        _protected, parsed = split_srtcp(plain + trailer.build(), auth_tag_len=0)
        assert parsed.index == 7
        assert not parsed.has_auth_tag

    def test_too_short_rejected(self):
        with pytest.raises(RtcpParseError):
            split_srtcp(b"\x80\xc8\x00\x00")

    def test_guess_prefers_tagged(self):
        plain = ReceiverReport(ssrc=1).to_packet().build()
        raw = plain + SrtcpTrailer(True, 3, b"x" * 10).build()
        guessed = guess_srtcp_trailer(raw)
        assert guessed is not None and guessed.index == 3


class TestLooksLikeRtcp:
    def test_accepts_sr(self):
        raw = SenderReport(ssrc=1, ntp_timestamp=0, rtp_timestamp=0,
                           packet_count=0, octet_count=0).to_packet().build()
        assert looks_like_rtcp(raw)

    def test_rejects_rtp(self):
        from repro.protocols.rtp.header import RtpPacket
        raw = RtpPacket(payload_type=96, sequence_number=1, timestamp=2,
                        ssrc=3, payload=b"x").build()
        assert not looks_like_rtcp(raw)

    def test_rejects_wrong_version(self):
        raw = bytearray(ReceiverReport(ssrc=1).to_packet().build())
        raw[0] = 0x41
        assert not looks_like_rtcp(bytes(raw))

    @given(st.binary(max_size=60))
    def test_never_crashes(self, data):
        looks_like_rtcp(data)


class TestConstants:
    def test_known_types(self):
        assert is_known_rtcp_type(200)
        assert is_known_rtcp_type(207)
        assert not is_known_rtcp_type(199)
        assert not is_known_rtcp_type(208)
        assert RtcpPacketType.SDES == 202
