"""Ablation of the stage-2 filtering heuristics (DESIGN.md design choice).

Measures, with ground truth the paper lacked, how much background traffic
each heuristic removes and what the full pipeline's precision/recall is.
"""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.filtering import TwoStageFilter


@pytest.fixture(scope="module")
def noisy_trace():
    return get_simulator("meet").simulate(
        CallConfig(network=NetworkCondition.WIFI_P2P, seed=2,
                   call_duration=40.0, media_scale=0.5)
    )


def test_filter_ablation(noisy_trace, benchmark):
    stages = [
        ("stage1-only", ()),
        ("+3tuple", ("3tuple",)),
        ("+sni", ("3tuple", "sni")),
        ("+local_ip", ("3tuple", "sni", "local_ip")),
        ("full", TwoStageFilter.ALL_HEURISTICS),
    ]
    leaked = {}
    print()
    for label, heuristics in stages:
        result = TwoStageFilter(
            noisy_trace.window, enabled_heuristics=heuristics
        ).apply(noisy_trace.records)
        evaluation = result.evaluation
        leaked[label] = evaluation.kept_non_rtc
        print(f"  {label:<12} leaked={evaluation.kept_non_rtc:5d} "
              f"precision={evaluation.precision:.4f} recall={evaluation.recall:.4f}")

    # Each added heuristic can only help (monotone leak reduction) and the
    # full pipeline must eliminate essentially all background traffic.
    order = [label for label, _ in stages]
    assert all(leaked[a] >= leaked[b] for a, b in zip(order, order[1:]))
    assert leaked["full"] <= leaked["stage1-only"] * 0.1

    full = TwoStageFilter(noisy_trace.window)
    result = benchmark(full.apply, noisy_trace.records)
    assert result.evaluation.recall > 0.97


def test_sequential_vs_exhaustive_checking(zoom_dpi, benchmark):
    """Ablation: the paper's sequential criterion evaluation vs collecting
    every violation (design choice in §4.2)."""
    from repro.core import ComplianceChecker

    messages = zoom_dpi.messages()
    sequential = ComplianceChecker(sequential=True).check(messages)
    exhaustive = ComplianceChecker(sequential=False).check(messages)
    # The verdict (compliant or not) must be identical in both modes.
    assert [v.compliant for v in sequential] == [v.compliant for v in exhaustive]
    # The exhaustive mode can only find >= as many violations.
    assert sum(len(v.violations) for v in exhaustive) >= sum(
        len(v.violations) for v in sequential
    )
    checker = ComplianceChecker(sequential=True)
    benchmark(checker.check, messages)
