"""Table 4: observed STUN/TURN message types per application."""

from repro.experiments.tables import render_observed_types, table4


def test_table4(matrix, benchmark):
    types = benchmark(table4, matrix)
    print("\n" + render_observed_types(types, "Table 4: STUN/TURN message types"))

    whatsapp = types["whatsapp"]
    assert whatsapp["compliant"] == ["0x0001"]
    assert set(whatsapp["non_compliant"]) == {
        "0x0003", "0x0101", "0x0103",
        "0x0800", "0x0801", "0x0802", "0x0803", "0x0804", "0x0805",
    }

    messenger = types["messenger"]
    assert set(messenger["compliant"]) == {
        "0x0004", "0x0008", "0x0009", "0x0016", "0x0017", "0x0104",
        "0x0108", "0x0109", "0x0113", "0x0118", "ChannelData",
    }
    assert set(messenger["non_compliant"]) == {
        "0x0001", "0x0003", "0x0101", "0x0103", "0x0800", "0x0801", "0x0802",
    }

    meet = types["meet"]
    assert meet["non_compliant"] == ["0x0003"]
    assert {"0x0001", "0x0200", "0x0300", "ChannelData"} <= set(meet["compliant"])

    zoom = types["zoom"]
    assert zoom["compliant"] == []
    assert set(zoom["non_compliant"]) == {"0x0001", "0x0002"}

    facetime = types["facetime"]
    assert facetime["compliant"] == []
    assert set(facetime["non_compliant"]) == {
        "0x0001", "0x0017", "0x0101", "ChannelData",
    }

    assert "discord" not in types  # Discord does not use STUN at all
