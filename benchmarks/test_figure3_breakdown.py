"""Figure 3: breakdown of datagrams — standard vs proprietary.

Paper's shape: Zoom ~100% of datagrams carry a proprietary prefix (~80%
header + ~20% fully proprietary); WhatsApp/Messenger/Discord/Meet are almost
entirely standard; FaceTime sits in between (high proprietary-header share
in relay mode, 0xDEADBEEFCAFE beacons on cellular).
"""

from repro.dpi.messages import DatagramClass
from repro.experiments.figures import figure3


def test_figure3(matrix, benchmark):
    shares = benchmark(figure3, matrix)
    for app, breakdown in shares.items():
        print(f"\nFigure 3 {app:<10} " + "  ".join(
            f"{cls}={value * 100:5.1f}%" for cls, value in breakdown.items()
        ))

    zoom = shares["zoom"]
    assert zoom["standard"] < 0.01
    assert zoom["proprietary_header"] > 0.6          # paper: ~80%
    assert zoom["fully_proprietary"] > 0.08          # paper: ~20%

    for app in ("whatsapp", "messenger", "discord", "meet"):
        assert shares[app]["standard"] > 0.95, app

    facetime = shares["facetime"]
    assert facetime["proprietary_header"] > 0.15     # relay-mode headers
    assert facetime["fully_proprietary"] > 0.02      # cellular beacons
    assert facetime["standard"] < shares["whatsapp"]["standard"]
