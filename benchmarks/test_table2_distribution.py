"""Table 2: message distribution by protocols and applications.

Paper's row shape: Zoom {RTP 78.9%, RTCP 1.1%, FP 20.0%, no QUIC};
FaceTime {RTP 97.6%, QUIC 0.1%, no RTCP}; Discord {no STUN};
Meet {STUN/TURN 19.8% — far above everyone else}.
"""

from repro.dpi import DpiEngine
from repro.experiments.tables import render_table2, table2


def test_table2(matrix, zoom_kept_records, benchmark):
    distribution = table2(matrix)
    print("\n" + render_table2(distribution))

    zoom = distribution["zoom"]
    assert zoom["fully_proprietary"] > 0.08          # paper: 20.0%
    assert zoom["rtp"] > 0.7                          # paper: 78.9%
    assert "quic" not in zoom or zoom["quic"] == 0.0

    facetime = distribution["facetime"]
    assert facetime["rtp"] > 0.85                     # paper: 97.6%
    assert 0 < facetime["quic"] < 0.05                # paper: 0.1%
    assert "rtcp" not in facetime                     # FaceTime has no RTCP

    discord = distribution["discord"]
    assert "stun_turn" not in discord                 # Discord has no STUN
    assert discord["rtp"] > 0.85                      # paper: 91.4%
    assert 0.02 < discord["rtcp"] < 0.15              # paper: 7.9%

    meet = distribution["meet"]
    others = [d.get("stun_turn", 0.0) for app, d in distribution.items()
              if app not in ("meet",)]
    assert meet["stun_turn"] > 0.1                    # paper: 19.8%
    assert meet["stun_turn"] > max(others) * 3        # far above everyone else

    engine = DpiEngine()
    result = benchmark(engine.analyze_records, zoom_kept_records)
    assert result.messages()
