"""§4.1 motivation: conventional DPI vs the paper's offset-shifting engine.

The paper argues existing DPI tools (offset-zero, strict-spec parsers with
Peafowl's payload-type whitelist) cannot observe exactly the traffic this
study targets.  This bench quantifies that: per application, how many
messages the baseline recovers relative to the custom engine, and times
both engines on the same records.
"""

import pytest

from repro.apps import APP_NAMES, CallConfig, NetworkCondition, get_simulator
from repro.dpi.baseline import BaselineDpi, compare_engines
from repro.dpi.adaptive import AdaptiveDpiEngine
from repro.filtering import TwoStageFilter


@pytest.fixture(scope="module")
def kept_by_app():
    out = {}
    for app in APP_NAMES:
        trace = get_simulator(app).simulate(
            CallConfig(network=NetworkCondition.WIFI_RELAY, seed=0,
                       call_duration=20.0, media_scale=0.4)
        )
        out[app] = TwoStageFilter(trace.window).apply(trace.records).kept_records
    return out


def test_baseline_vs_custom(kept_by_app, benchmark):
    print(f"\n  {'app':<11} {'custom msgs':>11} {'baseline':>9} "
          f"{'recall gain':>11} {'blind datagrams':>15}")
    results = {}
    for app, kept in kept_by_app.items():
        comparison = compare_engines(kept)
        results[app] = comparison
        print(f"  {app:<11} {comparison.custom_messages:>11} "
              f"{comparison.baseline_messages:>9} "
              f"{comparison.message_recall_gain:>10.1%} "
              f"{comparison.baseline_blind_share:>14.1%}")

    # Zoom: the baseline sees essentially nothing (proprietary headers).
    assert results["zoom"].message_recall_gain > 0.95
    # FaceTime: undefined extensions survive parsing, but dynamic payload
    # types and relay headers blind the baseline to most RTP.
    assert results["facetime"].message_recall_gain > 0.5
    # Discord uses only dynamic payload types: Peafowl's whitelist fails.
    assert results["discord"].message_recall_gain > 0.5
    # Even the best-behaved apps use dynamic payload types, so the baseline
    # still misses the bulk of their media.
    for app in APP_NAMES:
        assert results[app].custom_messages >= results[app].baseline_messages

    baseline = BaselineDpi()
    benchmark(baseline.analyze_records, kept_by_app["zoom"])


def test_adaptive_engine_matches_fixed(kept_by_app, benchmark):
    """Adaptive offset bounds (the paper's future work): identical results,
    measured runtime for the learned-bound engine."""
    from repro.dpi import DpiEngine

    kept = kept_by_app["zoom"]
    fixed = DpiEngine().analyze_records(kept)
    adaptive_engine = AdaptiveDpiEngine()
    adaptive = adaptive_engine.analyze_records(kept)
    assert len(adaptive.messages()) == len(fixed.messages())
    assert adaptive.by_class() == fixed.by_class()
    assert 24 <= adaptive_engine.stats.max_learned <= 40
    print(f"\n  learned max offset: {adaptive_engine.stats.max_learned} "
          f"(Zoom's proprietary header depth)")

    engine = AdaptiveDpiEngine()
    benchmark.pedantic(engine.analyze_records, args=(kept,), rounds=2, iterations=1)
