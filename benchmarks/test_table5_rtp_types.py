"""Table 5: observed RTP payload types per application."""

from repro.experiments.tables import render_observed_types, table5


def test_table5(matrix, benchmark):
    types = benchmark(table5, matrix)
    print("\n" + render_observed_types(types, "Table 5: RTP payload types"))

    assert set(types["whatsapp"]["compliant"]) == {"97", "103", "105", "106", "120"}
    assert types["whatsapp"]["non_compliant"] == []

    assert set(types["messenger"]["compliant"]) == {"97", "98", "101", "126", "127"}

    assert set(types["meet"]["compliant"]) == {
        "35", "36", "63", "96", "97", "100", "103", "104", "109", "111", "114",
    }

    assert types["facetime"]["compliant"] == []
    assert set(types["facetime"]["non_compliant"]) == {"13", "20", "100", "104", "108"}

    assert types["discord"]["compliant"] == []
    assert set(types["discord"]["non_compliant"]) == {"96", "101", "102", "120"}

    zoom = types["zoom"]
    assert zoom["non_compliant"] == []
    # Zoom rotates through its huge payload-type list (paper: ~50 types).
    assert len(zoom["compliant"]) >= 38
    assert {"0", "98", "110", "127"} <= set(zoom["compliant"])
