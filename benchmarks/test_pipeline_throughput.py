"""Raw pipeline throughput: synthesis, pcap I/O, DPI, compliance.

Not a paper table — an engineering benchmark for the library itself, so
regressions in the hot paths (candidate scan, TLV parsing) are visible.
"""

import io

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.packets.pcap import PcapReader, PcapWriter


def test_synthesis_throughput(benchmark):
    simulator = get_simulator("whatsapp")
    config = CallConfig(network=NetworkCondition.WIFI_RELAY, seed=1,
                        call_duration=20.0, media_scale=0.5)
    trace = benchmark(simulator.simulate, config)
    assert len(trace.records) > 1000


def test_pcap_write_read_throughput(zoom_kept_records, benchmark):
    records = zoom_kept_records[:2000]

    def round_trip():
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for record in records:
            writer.write_record(record)
        buffer.seek(0)
        return sum(1 for _ in PcapReader(buffer).records())

    count = benchmark(round_trip)
    assert count == len(records)


def test_dpi_throughput(zoom_kept_records, benchmark):
    engine = DpiEngine()
    records = zoom_kept_records[:3000]
    result = benchmark(engine.analyze_records, records)
    assert result.analyses


def test_checker_throughput(zoom_dpi, benchmark):
    checker = ComplianceChecker()
    messages = zoom_dpi.messages()
    verdicts = benchmark(checker.check, messages)
    assert len(verdicts) == len(messages)
