"""Raw pipeline throughput: synthesis, pcap I/O, DPI, compliance.

Not a paper table — an engineering benchmark for the library itself, so
regressions in the hot paths (candidate scan, TLV parsing) are visible.
The headline numbers — DPI datagrams/second with the flow-sticky fast
path on vs off, hit rates, and the serial matrix wall-clock both ways —
are written to ``BENCH_pipeline.json`` at the repo root so CI can archive
the trajectory.
"""

import dataclasses
import functools
import gc
import io
import json
import os
import pathlib
import time
import tracemalloc

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker, StreamingSummary
from repro.core.metrics import ComplianceSummary
from repro.dpi import ColumnarScanner, DpiEngine
from repro.experiments import ExperimentConfig, plan_shard_workers, run_matrix
from repro.experiments.runner import default_engine
from repro.packets.pcap import PcapReader, PcapWriter
from repro.packets.packet import PacketRecord
from repro.pipeline import DEFAULT_CHUNK_SIZE, run_streaming, run_streaming_sharded
from repro.protocols.rtp.header import RtpPacket

#: Filled by the tests below, flushed by ``test_emit_bench_json`` (last in
#: this module, so plain file order runs it after the producers).
RESULTS = {}

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def test_synthesis_throughput(benchmark):
    simulator = get_simulator("whatsapp")
    config = CallConfig(network=NetworkCondition.WIFI_RELAY, seed=1,
                        call_duration=20.0, media_scale=0.5)
    trace = benchmark(simulator.simulate, config)
    assert len(trace.records) > 1000


def test_pcap_write_read_throughput(zoom_kept_records, benchmark):
    records = zoom_kept_records[:2000]

    def round_trip():
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for record in records:
            writer.write_record(record)
        buffer.seek(0)
        return sum(1 for _ in PcapReader(buffer).records())

    count = benchmark(round_trip)
    assert count == len(records)


def test_dpi_throughput(zoom_kept_records, benchmark):
    engine = DpiEngine()
    records = zoom_kept_records[:3000]
    result = benchmark(engine.analyze_records, records)
    assert result.analyses


def test_dpi_sweep_vs_fastpath(zoom_kept_records):
    """Datagrams/second with the flow-sticky fast path off vs on.

    Fresh engines per run (best of two) so neither mode benefits from a
    warm payload-dedup cache; the fast path must beat the full sweep by
    the acceptance margin on this single-stream-heavy trace.
    """
    records = zoom_kept_records

    def run(fastpath):
        best_seconds, stats = None, None
        for _ in range(2):
            engine = DpiEngine(fastpath=fastpath)
            start = time.perf_counter()
            stats = engine.analyze_records(records).stats
            elapsed = time.perf_counter() - start
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        return best_seconds, stats

    sweep_seconds, sweep_stats = run(False)
    fast_seconds, fast_stats = run(True)
    speedup = sweep_seconds / fast_seconds
    RESULTS["dpi"] = {
        "datagrams": fast_stats.datagrams,
        "sweep_datagrams_per_second": round(
            sweep_stats.datagrams / sweep_seconds, 1
        ),
        "fastpath_datagrams_per_second": round(
            fast_stats.datagrams / fast_seconds, 1
        ),
        "speedup": round(speedup, 3),
        "fastpath_hit_rate": round(fast_stats.fastpath_hit_rate, 4),
        "cache_hit_rate": round(fast_stats.cache_hit_rate, 4),
        "fastpath_fallbacks": fast_stats.fastpath_fallbacks,
        "fastpath_redos": fast_stats.fastpath_redos,
    }
    assert fast_stats.fastpath_hits > 0
    assert speedup >= 1.5


def test_columnar_sweep_throughput(zoom_kept_records):
    """Stage-one sweeps/second: scalar per-payload scan vs columnar batches.

    Both sides run the same ``ColumnarScanner`` — ``scan_payload`` is the
    scalar reference (the exact matcher loop ``DpiEngine._sweep`` runs),
    ``scan_batch`` the chunked columnar pass.  Rounds interleave the two
    and take the best of each so scheduler noise cannot fake a win either
    way, and the candidate lists must match bit for bit with zero parity
    fallbacks before any number is recorded.
    """
    payloads = [record.payload for record in zoom_kept_records]
    chunks = [
        payloads[i:i + DEFAULT_CHUNK_SIZE]
        for i in range(0, len(payloads), DEFAULT_CHUNK_SIZE)
    ]
    scanner = ColumnarScanner(max_offset=200)

    def scalar_pass():
        scan = scanner.scan_payload
        return [scan(payload) for payload in payloads]

    def columnar_pass():
        out = []
        for chunk in chunks:
            out.extend(scanner.scan_batch(chunk))
        return out

    # Warm both paths once (numpy's first ufunc dispatch and the regex
    # caches are one-time costs) before the interleaved timed rounds.
    scalar_pass()
    columnar_pass()

    best_scalar = best_columnar = None
    reference = columnar = None
    # Cyclic GC pauses land wherever allocation bursts do — which in a
    # long-lived pytest process means mid-round, and disproportionately on
    # whichever pass happens to cross a generation threshold.  Park it so
    # both passes pay zero collection cost instead of a random one.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(5):
            start = time.perf_counter()
            reference = scalar_pass()
            elapsed = time.perf_counter() - start
            if best_scalar is None or elapsed < best_scalar:
                best_scalar = elapsed
            start = time.perf_counter()
            columnar = columnar_pass()
            elapsed = time.perf_counter() - start
            if best_columnar is None or elapsed < best_columnar:
                best_columnar = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()

    assert columnar == reference, "columnar scan diverged from the scalar sweep"
    assert scanner.stats.fallbacks == 0

    speedup = best_scalar / best_columnar
    RESULTS["columnar"] = {
        "payloads": len(payloads),
        "chunk_size": DEFAULT_CHUNK_SIZE,
        "vectorized": scanner.vectorized,
        "scalar_sweeps_per_second": round(len(payloads) / best_scalar, 1),
        "columnar_sweeps_per_second": round(len(payloads) / best_columnar, 1),
        "speedup": round(speedup, 3),
        "fallback_rate": scanner.stats.fallback_rate,
    }
    # The >= 3x acceptance bar needs the vector path; the mandatory
    # pure-Python fallback only has the matcher gating to work with.
    floor = 3.0 if scanner.vectorized else 1.05
    assert speedup >= floor, RESULTS["columnar"]


def test_batch_ingest_throughput(zoom_kept_records, tmp_path):
    """Capture decode throughput: per-frame scalar reader vs mmap batch.

    The same Ethernet/UDP-heavy zoom trace is serialized once; each round
    then ingests the file end-to-end both ways — the scalar side paying
    one ``read()`` per record header plus the layer-by-layer object
    decode, the batch side the mmap index scan plus the struct fast path.
    Rounds interleave and take the best of each, records must match bit
    for bit with zero undecodable skips, and the recorded numbers carry
    the fallback rate so a fast-path coverage regression is visible in
    the bench trajectory.
    """
    from repro.packets.batch import BatchPcapReader, IngestStats
    from repro.packets.pcap import write_pcap

    path = tmp_path / "ingest-bench.pcap"
    frames = write_pcap(path, zoom_kept_records)

    def scalar_pass():
        with open(path, "rb") as fileobj:
            return list(PcapReader(fileobj).records())

    stats = IngestStats()

    def batch_pass():
        with BatchPcapReader(path, stats=stats) as reader:
            return list(reader.records())

    reference = scalar_pass()
    batch = batch_pass()
    vectorized_probe = BatchPcapReader(path)
    vectorized = vectorized_probe.vectorized
    vectorized_probe.close()

    best_scalar = best_batch = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(5):
            start = time.perf_counter()
            reference = scalar_pass()
            elapsed = time.perf_counter() - start
            if best_scalar is None or elapsed < best_scalar:
                best_scalar = elapsed
            start = time.perf_counter()
            batch = batch_pass()
            elapsed = time.perf_counter() - start
            if best_batch is None or elapsed < best_batch:
                best_batch = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()

    assert batch == reference, "batch decode diverged from the scalar reader"
    assert stats.skipped == 0, "bench trace must contain no parity fallbacks"

    speedup = best_scalar / best_batch
    RESULTS["ingest"] = {
        "frames": frames,
        "records": len(reference),
        "vectorized": vectorized,
        "scalar_datagrams_per_second": round(len(reference) / best_scalar, 1),
        "batch_datagrams_per_second": round(len(reference) / best_batch, 1),
        "speedup": round(speedup, 3),
        "fast_path_rate": round(
            stats.fast_path / stats.frames, 4
        ) if stats.frames else 0.0,
        "fallback_rate": round(stats.fallback_rate, 6),
    }
    # The >= 3x acceptance bar needs the struct fast path to carry the
    # trace; without numpy the index scan alone still has to win.
    floor = 3.0 if vectorized else 1.05
    assert speedup >= floor, RESULTS["ingest"]


def test_checker_throughput(zoom_dpi, benchmark):
    checker = ComplianceChecker()
    messages = zoom_dpi.messages()
    verdicts = benchmark(checker.check, messages)
    assert len(verdicts) == len(messages)


def test_matrix_throughput(benchmark):
    """Serial vs parallel wall-clock for a small matrix, fast path on/off.

    The parallel run is the benchmarked quantity; the serial runs (one per
    fast-path mode, each on a cold process-wide engine) are timed once and
    recorded in ``extra_info``/``BENCH_pipeline.json`` so both speedups are
    visible in the bench trajectory.  Results must match bit-for-bit in
    every mode.
    """
    apps = ("whatsapp", "discord", "meet")
    networks = (NetworkCondition.WIFI_RELAY, NetworkCondition.CELLULAR)
    config = ExperimentConfig(call_duration=8.0, media_scale=0.25, seed=3)
    sweep_config = dataclasses.replace(config, fastpath=False)

    default_engine.cache_clear()
    start = time.perf_counter()
    serial = run_matrix(apps, networks, config=config, workers=1)
    serial_seconds = time.perf_counter() - start

    default_engine.cache_clear()
    start = time.perf_counter()
    sweep = run_matrix(apps, networks, config=sweep_config, workers=1)
    sweep_seconds = time.perf_counter() - start

    parallel = benchmark(run_matrix, apps, networks, config, None)

    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["serial_sweep_seconds"] = sweep_seconds
    RESULTS["matrix_serial"] = {
        "fastpath_seconds": round(serial_seconds, 3),
        "sweep_seconds": round(sweep_seconds, 3),
        "speedup": round(sweep_seconds / serial_seconds, 3),
    }
    for app in apps:
        for other in (parallel, sweep):
            assert other.per_app[app].summary == serial.per_app[app].summary
            assert other.per_app[app].class_counts == serial.per_app[app].class_counts
            assert (other.per_app[app].protocol_counts
                    == serial.per_app[app].protocol_counts)
        assert sweep.per_app[app].dpi_stats.fastpath_hits == 0
        assert serial.per_app[app].dpi_stats.fastpath_hits > 0
    # The fast path must not lose the serial matrix race; the hard >= 1.5x
    # bar lives on the DPI stage itself (test_dpi_sweep_vs_fastpath),
    # where simulation time cannot dilute it.
    assert sweep_seconds > serial_seconds


def _rotating_flow_records(flows, packets_per_flow):
    """Sequential short RTP flows, one UDP source port per flow.

    Each flow carries enough packets for the stream-scoped RTP validator
    to engage, and flows never interleave — so a streaming consumer can
    retire each flow (``finish_stream``) the moment the next one starts,
    while a batch consumer must hold the whole capture.
    """
    for flow in range(flows):
        ssrc = 0x5EED0000 + flow
        base = flow * packets_per_flow * 0.02
        for seq in range(packets_per_flow):
            packet = RtpPacket(
                payload_type=96,
                sequence_number=(1000 + seq) & 0xFFFF,
                timestamp=(seq * 960) & 0xFFFFFFFF,
                ssrc=ssrc,
                payload=bytes(160),
            )
            yield PacketRecord(
                timestamp=base + seq * 0.02,
                src_ip="192.168.7.2",
                src_port=30000 + flow,
                dst_ip="198.51.100.9",
                dst_port=50004,
                transport="UDP",
                payload=packet.build(),
            )


def _pipeline_peak(mode, flows, packets_per_flow=24):
    """tracemalloc peak (bytes), wall seconds, and the finished summary.

    ``cache_size=0`` and ``fastpath=False`` on both sides so neither the
    payload-dedup cache nor the fast path's per-flow sticky state (both
    deliberately O(flows)) muddies the measurement; the only variable is
    whether the run materializes the capture or streams it.
    """
    engine = DpiEngine(cache_size=0, fastpath=False)
    checker = ComplianceChecker()
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    try:
        if mode == "batch":
            records = list(_rotating_flow_records(flows, packets_per_flow))
            dpi = engine.analyze_records(records)
            summary = ComplianceSummary.from_verdicts(
                "bench", checker.check(dpi.messages())
            )
        else:
            session = engine.stream_session()
            stream = checker.stream()
            folding = StreamingSummary("bench")
            previous = None
            for record in _rotating_flow_records(flows, packets_per_flow):
                key = record.flow_key
                if previous is not None and key != previous:
                    for analysis in session.finish_stream(previous):
                        for index, verdict in stream.feed(analysis.messages):
                            folding.add(verdict, index=index)
                session.feed(record)
                previous = key
            for analysis in session.flush():
                for index, verdict in stream.feed(analysis.messages):
                    folding.add(verdict, index=index)
            for index, verdict in stream.flush():
                folding.add(verdict, index=index)
            summary = folding.result()
        elapsed = time.perf_counter() - start
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return peak, elapsed, summary


def test_streaming_memory_bounded():
    """Streaming peak memory is flat in call duration; batch grows with it.

    Same rotating-flow workload at 1x and 4x duration: the batch path's
    tracemalloc peak must scale roughly with the capture (> 2.5x), while
    the streaming path — which retires each flow as the next begins —
    must stay essentially flat (< 2x).  Both modes must still agree on
    the compliance summary, so the memory win provably costs no fidelity.
    """
    flows = 40
    batch_1x, _, batch_summary = _pipeline_peak("batch", flows)
    batch_4x, _, _ = _pipeline_peak("batch", flows * 4)
    stream_1x, _, stream_summary = _pipeline_peak("streaming", flows)
    stream_4x, seconds_4x, _ = _pipeline_peak("streaming", flows * 4)

    assert stream_summary == batch_summary
    assert batch_summary.volume.total > 0

    batch_ratio = batch_4x / batch_1x
    stream_ratio = stream_4x / stream_1x
    RESULTS["memory"] = {
        "flows_1x": flows,
        "packets_per_flow": 24,
        "batch_peak_kb_1x": round(batch_1x / 1024, 1),
        "batch_peak_kb_4x": round(batch_4x / 1024, 1),
        "batch_peak_ratio_4x": round(batch_ratio, 3),
        "streaming_peak_kb_1x": round(stream_1x / 1024, 1),
        "streaming_peak_kb_4x": round(stream_4x / 1024, 1),
        "streaming_peak_ratio_4x": round(stream_ratio, 3),
        "streaming_datagrams_per_second": round(flows * 4 * 24 / seconds_4x, 1),
    }
    assert batch_ratio > 2.5, RESULTS["memory"]
    assert stream_ratio < 2.0, RESULTS["memory"]


#: Streaming datagrams/second recorded in BENCH_pipeline.json by PR 4's
#: per-record pipeline (memory block, cache and fast path off).  The
#: chunked pipeline with production engine defaults must clear 1.5x this.
PR4_STREAMING_BASELINE = 1864.3


def test_sharded_parallel_throughput():
    """Chunked and flow-sharded streaming throughput, with parity proof.

    Measures datagrams/second for per-record (``chunk_size=1``) versus
    chunked streaming, and for the flow-sharded executor at 1/2/4 shards
    on a many-flow workload.  All five runs must produce bit-identical
    verdicts.  The multi-core speedup assertions only fire on machines
    with at least 4 CPUs — on smaller boxes the shard numbers are
    recorded for the trajectory but process overhead makes a hard bar
    meaningless.
    """
    flows, packets_per_flow = 96, 24
    records = list(_rotating_flow_records(flows, packets_per_flow))

    def fingerprint(verdicts):
        return [
            (verdict.message.protocol.value, verdict.compliant,
             tuple((v.criterion, v.code) for v in verdict.violations))
            for verdict in verdicts
        ]

    def timed_streaming(chunk_size):
        best_dgs, reference = 0.0, None
        for _ in range(2):
            engine = DpiEngine()
            start = time.perf_counter()
            dpi, verdicts, _ = run_streaming(
                records, engine, ComplianceChecker(), chunk_size=chunk_size
            )
            elapsed = time.perf_counter() - start
            best_dgs = max(best_dgs, dpi.stats.datagrams / elapsed)
            reference = fingerprint(verdicts)
        return best_dgs, reference

    per_record_dgs, per_record_fp = timed_streaming(1)
    chunked_dgs, chunked_fp = timed_streaming(DEFAULT_CHUNK_SIZE)
    assert chunked_fp == per_record_fp

    # Resolve every swept shard count through the production plan first:
    # counts the plan refuses (clamped to the CPU count, or degraded to
    # in-process entirely) are still measured for the trajectory, but
    # they are *annotated* so a sub-1.0 "speedup" on a small box reads as
    # a clamped configuration, not a regression.
    shard_plans = {
        shards: plan_shard_workers(shards, shards) for shards in (1, 2, 4)
    }
    refused = sorted(
        shards for shards, plan in shard_plans.items()
        if plan.effective < shards
    )

    shard_dgs = {}
    for shards in (1, 2, 4):
        start = time.perf_counter()
        dpi, verdicts, _ = run_streaming_sharded(
            records,
            engine_factory=functools.partial(DpiEngine),
            shards=shards,
            workers=0 if shards == 1 else shards,
        )
        elapsed = time.perf_counter() - start
        shard_dgs[shards] = dpi.stats.datagrams / elapsed
        assert fingerprint(verdicts) == per_record_fp

    cpus = os.cpu_count() or 1
    plan_4 = shard_plans[4]
    RESULTS["parallel"] = {
        "flows": flows,
        "packets_per_flow": packets_per_flow,
        "chunk_size": DEFAULT_CHUNK_SIZE,
        "per_record_datagrams_per_second": round(per_record_dgs, 1),
        "chunked_datagrams_per_second": round(chunked_dgs, 1),
        "chunked_vs_pr4_baseline": round(chunked_dgs / PR4_STREAMING_BASELINE, 3),
        "sharded_datagrams_per_second": {
            str(shards): round(dgs, 1) for shards, dgs in shard_dgs.items()
        },
        "cpu_count": cpus,
        "shard_speedup_4_vs_1": round(shard_dgs[4] / shard_dgs[1], 3),
        "shard_speedup_4_vs_1_note": (
            f"4-shard request refused by the plan on this machine "
            f"({plan_4.describe()}); the ratio documents clamped-config "
            f"overhead, not production behavior"
            if 4 in refused else "4 shards accepted by the plan"
        ),
        # Every swept shard count resolved through the production plan
        # (the executor clamps to the CPU count; see ShardPlan).
        "shard_plans": {
            str(shards): plan.as_dict() for shards, plan in shard_plans.items()
        },
        "refused_shard_counts": refused,
    }
    assert chunked_dgs >= 1.5 * PR4_STREAMING_BASELINE, RESULTS["parallel"]
    if cpus >= 4:
        # CI runners have the cores; the sharded path must actually win.
        assert shard_dgs[4] >= chunked_dgs, RESULTS["parallel"]
        assert shard_dgs[4] >= 2.0 * shard_dgs[1], RESULTS["parallel"]


def test_planner_auto_vs_fixed(tmp_path):
    """Acceptance bench for the adaptive execution planner.

    Runs the small bench matrix under three hand-picked fixed
    configurations (naive defaults, columnar backend, the 4-shard request
    the old bench documented as a 0.81x cliff) and under ``--plan auto``
    with a fresh calibration cache.  Auto must stay within the acceptance
    envelope of the best fixed configuration, and on a machine whose
    shard plan *refuses* 4 shards it must strictly beat that clamped
    configuration — that is the scenario the planner exists to avoid.
    Auto results must also stay bit-identical to the fixed-default run.
    """
    from repro.experiments import costmodel

    apps = ("whatsapp", "discord", "meet")
    networks = (NetworkCondition.WIFI_RELAY, NetworkCondition.CELLULAR)
    base = ExperimentConfig(call_duration=8.0, media_scale=0.25, seed=3)

    costmodel.reset_stores()
    configs = {
        name: dataclasses.replace(
            config, calibration_file=str(tmp_path / f"{name}.json")
        )
        for name, config in {
            "defaults": base,
            "columnar": dataclasses.replace(base, dpi_backend="columnar"),
            "shards4": dataclasses.replace(base, shard_workers=4),
            "auto": dataclasses.replace(base, plan="auto"),
        }.items()
    }

    def run_once(config):
        start = time.perf_counter()
        result = run_matrix(apps, networks, config=config, workers=1)
        return time.perf_counter() - start, result

    # Warm-up repetition of every config (auto's probes each cell and
    # seeds its calibration cache, exactly like the first repetition of
    # any real sweep), then interleaved best-of-3 timed rounds — the
    # matrix differences at stake (a few percent) are smaller than the
    # drift between non-interleaved measurement blocks.
    results = {}
    for name, config in configs.items():
        _, results[name] = run_once(config)
    best = {}
    for _ in range(3):
        for name, config in configs.items():
            elapsed, _ = run_once(config)
            best[name] = min(best.get(name, elapsed), elapsed)

    reference, auto_result = results["defaults"], results["auto"]
    for app in apps:
        assert auto_result.per_app[app].summary == reference.per_app[app].summary
        assert (auto_result.per_app[app].class_counts
                == reference.per_app[app].class_counts)

    auto_seconds = best.pop("auto")
    fixed_seconds = best
    best_name = min(fixed_seconds, key=fixed_seconds.__getitem__)
    ratio = auto_seconds / fixed_seconds[best_name]
    plan_4 = plan_shard_workers(4, 4)
    RESULTS["planner"] = {
        "matrix": {
            "apps": list(apps),
            "networks": [n.value for n in networks],
            "call_duration": base.call_duration,
            "media_scale": base.media_scale,
            "seed": base.seed,
        },
        "cpu_count": os.cpu_count() or 1,
        "auto_seconds": round(auto_seconds, 3),
        "fixed_seconds": {
            name: round(seconds, 3) for name, seconds in fixed_seconds.items()
        },
        "best_fixed": best_name,
        "auto_vs_best_fixed": round(ratio, 3),
        "target_ratio": 1.05,
        "within_target": ratio <= 1.05,
        "clamped_case": {
            "config": "shard_workers=4",
            "plan": plan_4.as_dict(),
            "refused": plan_4.in_process,
            "seconds": round(fixed_seconds["shards4"], 3),
            "auto_beats_clamped": auto_seconds < fixed_seconds["shards4"],
        },
        "sample_plans": {
            app: auto_result.per_app[app].plans[0] for app in apps
        },
    }
    # Hard bar with measurement slack; the 1.05 target itself is recorded
    # in the JSON so the trajectory shows how close auto actually runs.
    assert ratio <= 1.25, RESULTS["planner"]
    if plan_4.in_process:
        # The clamped-CPU scenario the old bench mis-read as a regression:
        # auto refuses the sharding and must win outright.
        assert auto_seconds < fixed_seconds["shards4"], RESULTS["planner"]


def test_emit_bench_json():
    """Flush the numbers gathered above to ``BENCH_pipeline.json``."""
    assert "dpi" in RESULTS and "matrix_serial" in RESULTS and "memory" in RESULTS
    assert "parallel" in RESULTS and "columnar" in RESULTS
    assert "planner" in RESULTS and "ingest" in RESULTS
    payload = dict(RESULTS)
    payload["trace"] = {
        "app": "zoom", "network": "wifi_relay",
        "call_duration": 40.0, "media_scale": 0.5, "seed": 0,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
