"""Raw pipeline throughput: synthesis, pcap I/O, DPI, compliance.

Not a paper table — an engineering benchmark for the library itself, so
regressions in the hot paths (candidate scan, TLV parsing) are visible.
The headline numbers — DPI datagrams/second with the flow-sticky fast
path on vs off, hit rates, and the serial matrix wall-clock both ways —
are written to ``BENCH_pipeline.json`` at the repo root so CI can archive
the trajectory.
"""

import dataclasses
import io
import json
import pathlib
import time

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.experiments import ExperimentConfig, run_matrix
from repro.experiments.runner import default_engine
from repro.packets.pcap import PcapReader, PcapWriter

#: Filled by the tests below, flushed by ``test_emit_bench_json`` (last in
#: this module, so plain file order runs it after the producers).
RESULTS = {}

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def test_synthesis_throughput(benchmark):
    simulator = get_simulator("whatsapp")
    config = CallConfig(network=NetworkCondition.WIFI_RELAY, seed=1,
                        call_duration=20.0, media_scale=0.5)
    trace = benchmark(simulator.simulate, config)
    assert len(trace.records) > 1000


def test_pcap_write_read_throughput(zoom_kept_records, benchmark):
    records = zoom_kept_records[:2000]

    def round_trip():
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for record in records:
            writer.write_record(record)
        buffer.seek(0)
        return sum(1 for _ in PcapReader(buffer).records())

    count = benchmark(round_trip)
    assert count == len(records)


def test_dpi_throughput(zoom_kept_records, benchmark):
    engine = DpiEngine()
    records = zoom_kept_records[:3000]
    result = benchmark(engine.analyze_records, records)
    assert result.analyses


def test_dpi_sweep_vs_fastpath(zoom_kept_records):
    """Datagrams/second with the flow-sticky fast path off vs on.

    Fresh engines per run (best of two) so neither mode benefits from a
    warm payload-dedup cache; the fast path must beat the full sweep by
    the acceptance margin on this single-stream-heavy trace.
    """
    records = zoom_kept_records

    def run(fastpath):
        best_seconds, stats = None, None
        for _ in range(2):
            engine = DpiEngine(fastpath=fastpath)
            start = time.perf_counter()
            stats = engine.analyze_records(records).stats
            elapsed = time.perf_counter() - start
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        return best_seconds, stats

    sweep_seconds, sweep_stats = run(False)
    fast_seconds, fast_stats = run(True)
    speedup = sweep_seconds / fast_seconds
    RESULTS["dpi"] = {
        "datagrams": fast_stats.datagrams,
        "sweep_datagrams_per_second": round(
            sweep_stats.datagrams / sweep_seconds, 1
        ),
        "fastpath_datagrams_per_second": round(
            fast_stats.datagrams / fast_seconds, 1
        ),
        "speedup": round(speedup, 3),
        "fastpath_hit_rate": round(fast_stats.fastpath_hit_rate, 4),
        "cache_hit_rate": round(fast_stats.cache_hit_rate, 4),
        "fastpath_fallbacks": fast_stats.fastpath_fallbacks,
        "fastpath_redos": fast_stats.fastpath_redos,
    }
    assert fast_stats.fastpath_hits > 0
    assert speedup >= 1.5


def test_checker_throughput(zoom_dpi, benchmark):
    checker = ComplianceChecker()
    messages = zoom_dpi.messages()
    verdicts = benchmark(checker.check, messages)
    assert len(verdicts) == len(messages)


def test_matrix_throughput(benchmark):
    """Serial vs parallel wall-clock for a small matrix, fast path on/off.

    The parallel run is the benchmarked quantity; the serial runs (one per
    fast-path mode, each on a cold process-wide engine) are timed once and
    recorded in ``extra_info``/``BENCH_pipeline.json`` so both speedups are
    visible in the bench trajectory.  Results must match bit-for-bit in
    every mode.
    """
    apps = ("whatsapp", "discord", "meet")
    networks = (NetworkCondition.WIFI_RELAY, NetworkCondition.CELLULAR)
    config = ExperimentConfig(call_duration=8.0, media_scale=0.25, seed=3)
    sweep_config = dataclasses.replace(config, fastpath=False)

    default_engine.cache_clear()
    start = time.perf_counter()
    serial = run_matrix(apps, networks, config=config, workers=1)
    serial_seconds = time.perf_counter() - start

    default_engine.cache_clear()
    start = time.perf_counter()
    sweep = run_matrix(apps, networks, config=sweep_config, workers=1)
    sweep_seconds = time.perf_counter() - start

    parallel = benchmark(run_matrix, apps, networks, config, None)

    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["serial_sweep_seconds"] = sweep_seconds
    RESULTS["matrix_serial"] = {
        "fastpath_seconds": round(serial_seconds, 3),
        "sweep_seconds": round(sweep_seconds, 3),
        "speedup": round(sweep_seconds / serial_seconds, 3),
    }
    for app in apps:
        for other in (parallel, sweep):
            assert other.per_app[app].summary == serial.per_app[app].summary
            assert other.per_app[app].class_counts == serial.per_app[app].class_counts
            assert (other.per_app[app].protocol_counts
                    == serial.per_app[app].protocol_counts)
        assert sweep.per_app[app].dpi_stats.fastpath_hits == 0
        assert serial.per_app[app].dpi_stats.fastpath_hits > 0
    # The fast path must not lose the serial matrix race; the hard >= 1.5x
    # bar lives on the DPI stage itself (test_dpi_sweep_vs_fastpath),
    # where simulation time cannot dilute it.
    assert sweep_seconds > serial_seconds


def test_emit_bench_json():
    """Flush the numbers gathered above to ``BENCH_pipeline.json``."""
    assert "dpi" in RESULTS and "matrix_serial" in RESULTS
    payload = dict(RESULTS)
    payload["trace"] = {
        "app": "zoom", "network": "wifi_relay",
        "call_duration": 40.0, "media_scale": 0.5, "seed": 0,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
