"""Raw pipeline throughput: synthesis, pcap I/O, DPI, compliance.

Not a paper table — an engineering benchmark for the library itself, so
regressions in the hot paths (candidate scan, TLV parsing) are visible.
"""

import io
import time

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.experiments import ExperimentConfig, run_matrix
from repro.packets.pcap import PcapReader, PcapWriter


def test_synthesis_throughput(benchmark):
    simulator = get_simulator("whatsapp")
    config = CallConfig(network=NetworkCondition.WIFI_RELAY, seed=1,
                        call_duration=20.0, media_scale=0.5)
    trace = benchmark(simulator.simulate, config)
    assert len(trace.records) > 1000


def test_pcap_write_read_throughput(zoom_kept_records, benchmark):
    records = zoom_kept_records[:2000]

    def round_trip():
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for record in records:
            writer.write_record(record)
        buffer.seek(0)
        return sum(1 for _ in PcapReader(buffer).records())

    count = benchmark(round_trip)
    assert count == len(records)


def test_dpi_throughput(zoom_kept_records, benchmark):
    engine = DpiEngine()
    records = zoom_kept_records[:3000]
    result = benchmark(engine.analyze_records, records)
    assert result.analyses


def test_checker_throughput(zoom_dpi, benchmark):
    checker = ComplianceChecker()
    messages = zoom_dpi.messages()
    verdicts = benchmark(checker.check, messages)
    assert len(verdicts) == len(messages)


def test_matrix_throughput(benchmark):
    """Serial vs parallel wall-clock for a small matrix.

    The parallel run is the benchmarked quantity; the serial run is timed
    once and recorded in ``extra_info`` so the speedup is visible in the
    bench trajectory.  Results must match bit-for-bit either way.
    """
    apps = ("whatsapp", "discord", "meet")
    networks = (NetworkCondition.WIFI_RELAY, NetworkCondition.CELLULAR)
    config = ExperimentConfig(call_duration=8.0, media_scale=0.25, seed=3)

    start = time.perf_counter()
    serial = run_matrix(apps, networks, config=config, workers=1)
    serial_seconds = time.perf_counter() - start

    parallel = benchmark(run_matrix, apps, networks, config, None)

    benchmark.extra_info["serial_seconds"] = serial_seconds
    for app in apps:
        assert parallel.per_app[app].summary == serial.per_app[app].summary
        assert parallel.per_app[app].class_counts == serial.per_app[app].class_counts
        assert (parallel.per_app[app].protocol_counts
                == serial.per_app[app].protocol_counts)
