"""Table 6: observed RTCP packet types per application."""

from repro.experiments.tables import render_observed_types, table6


def test_table6(matrix, benchmark):
    types = benchmark(table6, matrix)
    print("\n" + render_observed_types(types, "Table 6: RTCP packet types"))

    assert set(types["whatsapp"]["compliant"]) == {"200", "202", "205", "206"}
    assert types["whatsapp"]["non_compliant"] == []

    assert set(types["zoom"]["compliant"]) == {"200", "202"}

    assert set(types["messenger"]["compliant"]) == {"200", "201", "205", "206"}

    assert types["discord"]["compliant"] == []
    assert set(types["discord"]["non_compliant"]) == {"200", "201", "204",
                                                      "205", "206"}

    assert types["meet"]["compliant"] == []
    assert set(types["meet"]["non_compliant"]) == {"200", "201", "202", "204",
                                                   "205", "206", "207"}

    assert "facetime" not in types  # FaceTime does not use RTCP
