"""Shared state for the benchmark harness.

The full experiment matrix (6 apps x 3 networks) is computed once per
session; each benchmark file prints its table/figure from it, asserts the
paper's shape, and times a representative pipeline stage with
pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine
from repro.experiments import ExperimentConfig, run_matrix
from repro.filtering import TwoStageFilter

#: Scaled-down analogue of the paper's 5-minute calls: long enough for every
#: behaviour (bursts, call-end messages, payload-type rotations) to appear.
BENCH_CONFIG = ExperimentConfig(call_duration=40.0, media_scale=0.5, seed=0)

#: Worker processes for the shared matrix fixture.  Overridable so CI can
#: pin it; the parallel and serial paths are bit-identical by contract.
BENCH_WORKERS = int(os.environ.get("BENCH_WORKERS", os.cpu_count() or 1))


@pytest.fixture(scope="session")
def matrix():
    return run_matrix(config=BENCH_CONFIG, workers=BENCH_WORKERS)


@pytest.fixture(scope="session")
def zoom_trace():
    return get_simulator("zoom").simulate(
        CallConfig(network=NetworkCondition.WIFI_RELAY, seed=0,
                   call_duration=40.0, media_scale=0.5)
    )


@pytest.fixture(scope="session")
def zoom_kept_records(zoom_trace):
    return TwoStageFilter(zoom_trace.window).apply(zoom_trace.records).kept_records


@pytest.fixture(scope="session")
def zoom_dpi(zoom_kept_records):
    return DpiEngine().analyze_records(zoom_kept_records)
