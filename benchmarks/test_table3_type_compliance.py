"""Table 3: protocol compliance ratio by message type.

Paper's rows: Zoom 0/2 STUN + all-RTP + 2/2 RTCP; FaceTime 0/4, 0/5, 4/4
QUIC; WhatsApp 1/10, 5/5, 4/4 (10/19); Messenger 11/18, 5/5, 4/4 (20/27);
Discord 0/9; Meet 15/16, all-RTP, 0/7.
"""

from repro.core import ComplianceChecker
from repro.dpi import DpiEngine
from repro.experiments.tables import render_table3, table3


def test_table3(matrix, zoom_dpi, benchmark):
    table = table3(matrix)
    print("\n" + render_table3(table))

    assert table["zoom"]["stun_turn"] == (0, 2)
    assert table["zoom"]["rtcp"] == (2, 2)
    rtp_compliant, rtp_total = table["zoom"]["rtp"]
    assert rtp_compliant == rtp_total >= 38          # paper: 50/50

    assert table["facetime"]["stun_turn"] == (0, 4)
    assert table["facetime"]["rtp"] == (0, 5)
    assert table["facetime"]["quic"][0] == table["facetime"]["quic"][1] > 0

    assert table["whatsapp"]["stun_turn"] == (1, 10)
    assert table["whatsapp"]["rtp"] == (5, 5)
    assert table["whatsapp"]["rtcp"] == (4, 4)
    assert table["whatsapp"]["all"] == (10, 19)

    assert table["messenger"]["stun_turn"] == (11, 18)
    assert table["messenger"]["all"] == (20, 27)

    assert table["discord"]["all"] == (0, 9)

    assert table["meet"]["stun_turn"] == (15, 16)
    assert table["meet"]["rtcp"] == (0, 7)
    meet_rtp = table["meet"]["rtp"]
    assert meet_rtp[0] == meet_rtp[1] == 11          # paper: 11/11

    # Bottom row: across apps, STUN and RTCP lose most types.
    bottom = table["All Apps"]
    assert bottom["stun_turn"][0] / bottom["stun_turn"][1] < 0.6
    assert bottom["rtcp"][0] / bottom["rtcp"][1] < 0.6
    assert bottom["rtp"][0] / bottom["rtp"][1] > 0.8
    assert bottom["quic"][0] == bottom["quic"][1]

    checker = ComplianceChecker()
    messages = zoom_dpi.messages()
    verdicts = benchmark(checker.check, messages)
    assert len(verdicts) == len(messages)
