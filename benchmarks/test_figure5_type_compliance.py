"""Figure 5: compliance ratio by message type.

Paper's shape: by protocol, QUIC 4/4, RTP ~71/80, RTCP ~10/22, STUN ~27/50;
by app, Zoom best (52/54) and Discord worst (0/9).
"""

from repro.experiments.figures import figure5, render_ratio_series


def test_figure5(matrix, benchmark):
    fig = benchmark(figure5, matrix)
    print("\n" + render_ratio_series(fig["by_app"], "Figure 5 — by application"))
    print(render_ratio_series(fig["by_protocol"], "Figure 5 — by protocol"))

    by_protocol = fig["by_protocol"]
    assert by_protocol["quic"] == 1.0
    assert by_protocol["rtp"] > 0.8                  # paper: 71/80
    assert by_protocol["rtcp"] < 0.6                 # paper: 10/22
    assert by_protocol["stun_turn"] < 0.6            # paper: 27/50
    assert by_protocol["rtp"] > by_protocol["stun_turn"]
    assert by_protocol["rtp"] > by_protocol["rtcp"]

    by_app = fig["by_app"]
    assert by_app["discord"] == 0.0                  # paper: 0/9
    assert max(by_app, key=by_app.get) == "zoom"     # paper: 52/54
    assert min(by_app, key=by_app.get) == "discord"
    assert by_app["facetime"] < 0.5                  # paper: 4/13
