"""§4.1.1: the k=200 offset bound — recall vs runtime.

The paper reports that extraction with k=200 yields the same validated
message set as full-payload extraction; smaller bounds miss messages hidden
behind proprietary headers.  This bench sweeps k and times the engine.
"""

import time

from repro.dpi import DpiEngine


def test_k_offset_sweep(zoom_kept_records, benchmark):
    sweep = {}
    print()
    for k in (0, 8, 16, 32, 64, 128, 200, 100000):
        started = time.perf_counter()
        result = DpiEngine(max_offset=k).analyze_records(zoom_kept_records)
        elapsed = time.perf_counter() - started
        count = len(result.messages())
        sweep[k] = count
        label = "full" if k == 100000 else str(k)
        print(f"  k={label:>5}  messages={count:6d}  time={elapsed:6.2f}s")

    # Zoom's 24-39 byte headers hide everything from k<24.
    assert sweep[0] < sweep[200]
    assert sweep[8] < sweep[200]
    # Monotone non-decreasing recall in k.
    ks = sorted(k for k in sweep)
    assert all(sweep[a] <= sweep[b] for a, b in zip(ks, ks[1:]))
    # The paper's headline: k=200 matches full-payload extraction.
    assert sweep[200] == sweep[100000]
    # And already k=64 suffices for Zoom's headers (24-39 bytes + wrapper).
    assert sweep[64] == sweep[200]

    engine = DpiEngine(max_offset=200)
    benchmark.pedantic(
        engine.analyze_records, args=(zoom_kept_records,), rounds=2, iterations=1
    )
