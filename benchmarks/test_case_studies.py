"""§5.2/§5.3 case studies: paper claim vs measured value, per behaviour."""

import pytest

from repro.apps import CallConfig, NetworkCondition, get_simulator
from repro.dpi import DpiEngine
from repro.experiments.case_studies import (
    detect_call_end_0800,
    detect_direction_byte,
    detect_dual_rtp,
    detect_extension_abuse,
    detect_facetime_beacons,
    detect_facetime_headers,
    detect_meta_burst,
    detect_srtcp_tags,
    detect_ssrc_zero,
    detect_zoom_filler,
    observed_rtp_ssrcs,
)
from repro.filtering import TwoStageFilter


@pytest.fixture(scope="module")
def analyzed():
    cache = {}

    def get(app, network, seed=0, call_index=0):
        key = (app, network, seed, call_index)
        if key not in cache:
            trace = get_simulator(app).simulate(
                CallConfig(network=network, seed=seed, call_index=call_index,
                           call_duration=40.0, media_scale=0.5)
            )
            kept = TwoStageFilter(trace.window).apply(trace.records).kept_records
            cache[key] = (trace, DpiEngine().analyze_records(kept))
        return cache[key]

    return get


def test_zoom_filler_bursts(analyzed, benchmark):
    _trace, dpi = analyzed("zoom", NetworkCondition.WIFI_RELAY)
    report = benchmark.pedantic(detect_zoom_filler, args=(dpi.analyses,),
                                rounds=3, iterations=1)
    print(f"\n  filler share of fully-proprietary: {report.filler_share * 100:.0f}% "
          f"(paper: 53%)  peak {report.peak_rate_pps:.0f} pkt/s (paper: <=500)")
    assert 0.25 < report.filler_share < 0.85
    assert report.peak_rate_pps > 50
    assert report.shares_media_stream


def test_zoom_dual_rtp(analyzed, benchmark):
    dual = rtp = 0
    for call_index in range(3):
        _trace, dpi = analyzed("zoom", NetworkCondition.WIFI_RELAY,
                               call_index=call_index)
        report = detect_dual_rtp(dpi.analyses)
        dual += report.dual_datagrams
        rtp += report.rtp_datagrams
    rate = dual / rtp
    print(f"\n  dual-RTP datagrams: {rate * 100:.2f}% (paper: 0.21%)")
    assert 0.0003 < rate < 0.01
    _trace, dpi = analyzed("zoom", NetworkCondition.WIFI_RELAY)
    report = benchmark.pedantic(detect_dual_rtp, args=(dpi.analyses,),
                                rounds=2, iterations=1)
    if report.dual_datagrams:
        assert report.all_first_short
        assert report.all_same_ssrc_timestamp


def test_zoom_ssrc_reuse_across_calls(analyzed, benchmark):
    sets = []
    for call_index in range(2):
        _trace, dpi = analyzed("zoom", NetworkCondition.CELLULAR,
                               call_index=call_index)
        sets.append(observed_rtp_ssrcs(dpi.messages()))
    _trace, dpi = analyzed("zoom", NetworkCondition.CELLULAR)
    benchmark.pedantic(observed_rtp_ssrcs, args=(dpi.messages(),),
                       rounds=2, iterations=1)
    print(f"\n  SSRC sets across calls identical: {sets[0] == sets[1]} "
          f"(paper: never change)")
    assert sets[0] == sets[1]
    assert len(sets[0]) == 4  # exactly four per network setting


def test_discord_ssrc_zero(analyzed, benchmark):
    _trace, dpi = analyzed("discord", NetworkCondition.WIFI_RELAY)
    report = benchmark.pedantic(detect_ssrc_zero, args=(dpi.messages(),),
                                rounds=2, iterations=1)
    print(f"\n  SSRC=0 in type-205: {report.rate * 100:.0f}% (paper: ~25%)")
    assert 0.1 < report.rate < 0.45


def test_discord_direction_byte(analyzed, benchmark):
    _trace, dpi = analyzed("discord", NetworkCondition.CELLULAR)
    report = benchmark.pedantic(detect_direction_byte, args=(dpi.messages(),),
                                rounds=2, iterations=1)
    print(f"\n  direction byte correlated: {report.perfectly_correlated} "
          f"(paper: perfect correlation)")
    assert report.perfectly_correlated


def test_discord_extension_abuse(analyzed, benchmark):
    _trace, dpi = analyzed("discord", NetworkCondition.WIFI_RELAY)
    report = benchmark.pedantic(detect_extension_abuse, args=(dpi.messages(),),
                                rounds=2, iterations=1)
    print(f"\n  ID=0 elements: {report.id_zero_rate * 100:.2f}% (paper: 4.91%)  "
          f"undefined profiles: {report.undefined_profile_rate * 100:.2f}% "
          f"(paper: 2.58%, PT 120 only)")
    assert 0.02 < report.id_zero_rate < 0.09
    assert 0.01 < report.undefined_profile_rate < 0.05
    assert report.undefined_profile_payload_types == {120}


def test_facetime_cellular_beacons(analyzed, benchmark):
    _trace, dpi = analyzed("facetime", NetworkCondition.CELLULAR)
    cellular = benchmark.pedantic(detect_facetime_beacons, args=(dpi.analyses,),
                                  rounds=2, iterations=1)
    _trace, dpi = analyzed("facetime", NetworkCondition.WIFI_P2P)
    wifi = detect_facetime_beacons(dpi.analyses)
    print(f"\n  beacon share cellular: {cellular.share * 100:.1f}% (paper: ~10%)  "
          f"wifi: {wifi.share * 100:.1f}% (paper: <1%)")
    assert cellular.share > 0.05
    assert wifi.share < 0.01
    assert cellular.all_36_bytes and cellular.counters_monotonic
    assert abs(cellular.median_interval - 0.05) < 0.005  # 20 pkt/s even


def test_facetime_relay_headers(analyzed, benchmark):
    _trace, dpi = analyzed("facetime", NetworkCondition.WIFI_RELAY)
    relay = benchmark.pedantic(detect_facetime_headers, args=(dpi.analyses,),
                               rounds=2, iterations=1)
    _trace, dpi = analyzed("facetime", NetworkCondition.WIFI_P2P)
    p2p = detect_facetime_headers(dpi.analyses)
    print(f"\n  relay-mode headered: {relay.share * 100:.1f}% (paper: 89.2%)  "
          f"p2p count: {p2p.headered} (paper: <50)")
    assert relay.share > 0.75
    assert relay.all_start_0x6000
    assert relay.length_range[0] >= 8 and relay.length_range[1] <= 19
    assert p2p.headered < 50


def test_meta_bursts_and_call_end(analyzed, benchmark):
    for app, end_count in (("whatsapp", 4), ("messenger", 6)):
        trace, dpi = analyzed(app, NetworkCondition.WIFI_RELAY)
        if app == "whatsapp":
            burst = benchmark.pedantic(detect_meta_burst, args=(dpi.messages(),),
                                       rounds=2, iterations=1)
        else:
            burst = detect_meta_burst(dpi.messages())
        end = detect_call_end_0800(dpi.messages(), trace.window.call_end)
        print(f"\n  {app}: burst {burst.pairs} pairs in "
              f"{burst.burst_span * 1000:.1f} ms (paper: 16 in ~2.2 ms); "
              f"call-end 0x0800 x{end.count} (paper: {end_count})")
        assert burst.pairs == 16
        assert burst.burst_span < 0.005
        assert burst.request_sizes == frozenset({500})
        assert burst.response_sizes == frozenset({40})
        assert end.count == end_count
        assert end.near_call_end and end.carry_relayed_address


def test_meet_srtcp_auth_tags(analyzed, benchmark):
    shares = {}
    for network in NetworkCondition:
        _trace, dpi = analyzed("meet", network)
        shares[network] = detect_srtcp_tags(dpi.messages()).tagless_share
    _trace, dpi = analyzed("meet", NetworkCondition.WIFI_RELAY)
    benchmark.pedantic(detect_srtcp_tags, args=(dpi.messages(),),
                       rounds=2, iterations=1)
    print("\n  tagless SRTCP share: " + "  ".join(
        f"{network.value}={share * 100:.0f}%" for network, share in shares.items()
    ) + "  (paper: most tagless in relay Wi-Fi only)")
    assert shares[NetworkCondition.WIFI_RELAY] > 0.7
    assert shares[NetworkCondition.WIFI_P2P] == 0.0
    assert shares[NetworkCondition.CELLULAR] == 0.0
