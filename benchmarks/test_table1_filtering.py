"""Table 1: traffic traces and filtering progress across all applications.

Regenerates the per-app stream/datagram accounting of the two-stage filter
and benchmarks the filter itself.
"""

from repro.experiments.tables import render_table1, table1
from repro.filtering import TwoStageFilter


def test_table1(matrix, zoom_trace, benchmark):
    rows = table1(matrix)
    print("\n" + render_table1(rows))

    by_app = {row.app: row for row in rows}
    for app, row in by_app.items():
        # Conservation: every raw packet is either removed or kept.
        assert row.raw_udp[1] == row.stage1_udp[1] + row.stage2_udp[1] + row.rtc_udp[1]
        # Both filter stages find something to remove in every experiment.
        assert row.stage1_udp[0] + row.stage1_tcp[0] > 0, app
        assert row.stage2_udp[0] + row.stage2_tcp[0] > 0, app
        # The overwhelming majority of UDP datagrams are RTC media (paper:
        # 3.2m of 3.2m for Zoom etc.), while many streams are background.
        assert row.rtc_udp[1] / row.raw_udp[1] > 0.9, app
        # A small RTC TCP remainder persists (signaling), as in the paper.
        assert row.rtc_tcp[1] > 0, app

    pipeline = TwoStageFilter(zoom_trace.window)
    result = benchmark(pipeline.apply, zoom_trace.records)
    assert result.kept.udp_packets > 0
