"""Which of the five criteria catches each application's violations.

Not a numbered paper table, but it quantifies §5.2's narrative: undefined
message types (criterion 1) dominate the Meta apps' STUN dialect, undefined
attributes/extension profiles (criterion 3) dominate Zoom and FaceTime, and
semantic rules (criterion 5) are what catch Discord's trailers and Meet's
missing authentication tags.
"""

from collections import Counter

from repro.core import ComplianceChecker
from repro.core.verdict import Criterion
from repro.experiments.report import violation_inventory


def test_criteria_breakdown(matrix, zoom_dpi, benchmark):
    # The matrix aggregate stores only summaries; recompute verdicts for a
    # representative cell per app from the summaries' example violations.
    per_app = {}
    for app, aggregate in matrix.per_app.items():
        counter = Counter()
        for entry in aggregate.summary.types.values():
            if not entry.example_violations:
                continue
            # Attribute each type's non-compliant messages to the criterion
            # of its representative (first) violation.
            criterion = int(entry.example_violations[0].split(":")[0].lstrip("[C"))
            counter[criterion] += entry.non_compliant
        per_app[app] = counter

    print(f"\n  {'app':<11} " + " ".join(f"{'C' + str(i):>8}" for i in range(1, 6)))
    for app, counter in per_app.items():
        row = " ".join(f"{counter.get(i, 0):>8}" for i in range(1, 6))
        print(f"  {app:<11} {row}")

    # WhatsApp/Messenger: undefined message types (criterion 1) present.
    assert per_app["whatsapp"][1] > 0
    assert per_app["messenger"][1] > 0
    # Zoom and FaceTime: undefined attributes/profiles (criterion 3) dominate.
    assert per_app["zoom"][3] > 0
    assert per_app["facetime"][3] > max(per_app["facetime"][1], 1)
    # Discord and Meet: semantic rules (criterion 5) do the catching.
    assert per_app["discord"][5] > 0
    assert per_app["meet"][5] > 0
    # Nobody trips criterion 2 in the studied apps (header fields are the
    # best-respected layer — parse-level framing filters the rest).
    assert all(counter.get(2, 0) == 0 for counter in per_app.values())

    # Benchmark: full per-criterion inventory over a real verdict set.
    verdicts = ComplianceChecker().check(zoom_dpi.messages())
    inventory = benchmark(violation_inventory, verdicts)
    assert Criterion.ATTRIBUTE_TYPES in inventory or not inventory
