"""Figure 4: compliance ratio by traffic volume.

Paper's shape: Zoom and WhatsApp near-perfect; Messenger/Meet/Discord high;
FaceTime lowest by far (~1.4%, all RTP non-compliant).  By protocol: QUIC
100%, then RTP > RTCP (STUN's volume ratio depends on the Meet-heavy mix).
"""

from repro.experiments.figures import figure4, render_ratio_series


def test_figure4(matrix, benchmark):
    fig = benchmark(figure4, matrix)
    print("\n" + render_ratio_series(fig["by_app"], "Figure 4 — by application"))
    print(render_ratio_series(fig["by_protocol"], "Figure 4 — by protocol"))

    by_app = fig["by_app"]
    assert by_app["zoom"] > 0.99
    assert by_app["whatsapp"] > 0.95
    assert by_app["messenger"] > 0.95
    assert by_app["meet"] > 0.90
    assert by_app["facetime"] < 0.05
    assert min(by_app, key=by_app.get) == "facetime"

    by_protocol = fig["by_protocol"]
    assert by_protocol["quic"] == 1.0
    assert by_protocol["rtp"] > by_protocol["rtcp"]
    # RTCP's volume compliance is dragged down by Discord and relay-Meet.
    assert by_protocol["rtcp"] < 0.9
